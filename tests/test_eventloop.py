"""Tests for the discrete-event loop, processes, and signals."""

import pytest

from repro.errors import SimulationError
from repro.nicsim.eventloop import EventLoop, Process, Signal, wait_any


class TestEventLoop:
    def test_schedule_and_run(self):
        loop = EventLoop()
        fired = []
        loop.schedule(100, lambda: fired.append(loop.now_ps))
        loop.schedule(50, lambda: fired.append(loop.now_ps))
        loop.run()
        assert fired == [50, 100]

    def test_same_time_insertion_order(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.schedule(10, lambda i=i: fired.append(i))
        loop.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_cancel(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(10, lambda: fired.append(1))
        event.cancel()
        loop.run()
        assert fired == []

    def test_no_scheduling_into_past(self):
        loop = EventLoop()
        loop.schedule(10, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventLoop().schedule(-1, lambda: None)

    def test_run_until(self):
        loop = EventLoop()
        fired = []
        loop.schedule(100, lambda: fired.append("a"))
        loop.schedule(300, lambda: fired.append("b"))
        loop.run(until_ps=200)
        assert fired == ["a"]
        assert loop.now_ps == 200  # clock advanced to the horizon
        loop.run()
        assert fired == ["a", "b"]

    def test_run_for(self):
        loop = EventLoop()
        loop.run_for(500)
        assert loop.now_ps == 500

    def test_now_ns(self):
        loop = EventLoop()
        loop.schedule(1500, lambda: None)
        loop.run()
        assert loop.now_ns == pytest.approx(1.5)

    def test_event_budget_guard(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule(1, reschedule)

        loop.schedule(1, reschedule)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)

    def test_events_scheduled_during_run(self):
        loop = EventLoop()
        fired = []
        loop.schedule(10, lambda: loop.schedule(10, lambda: fired.append(2)))
        loop.run()
        assert fired == [2] and loop.now_ps == 20


class TestSignal:
    def test_trigger_wakes_all(self):
        sig = Signal()
        got = []
        sig.wait(got.append)
        sig.wait(got.append)
        sig.trigger("x")
        assert got == ["x", "x"]

    def test_waiters_fire_once(self):
        sig = Signal()
        got = []
        sig.wait(got.append)
        sig.trigger(1)
        sig.trigger(2)
        assert got == [1]

    def test_has_waiters(self):
        sig = Signal()
        assert not sig.has_waiters
        sig.wait(lambda v: None)
        assert sig.has_waiters

    def test_discard_removes_waiter(self):
        sig = Signal()
        got = []
        sig.wait(got.append)
        assert sig.discard(got.append)
        sig.trigger(1)
        assert got == [] and not sig.has_waiters

    def test_discard_missing_waiter_is_noop(self):
        sig = Signal()
        assert not sig.discard(lambda v: None)

    def test_discard_removes_single_registration(self):
        sig = Signal()
        got = []
        sig.wait(got.append)
        sig.wait(got.append)
        sig.discard(got.append)
        sig.trigger("x")
        assert got == ["x"]


class TestProcess:
    def test_delays(self):
        loop = EventLoop()
        trace = []

        def proc():
            trace.append(loop.now_ps)
            yield 100
            trace.append(loop.now_ps)
            yield 50
            trace.append(loop.now_ps)

        loop.spawn(proc())
        loop.run()
        assert trace == [0, 100, 150]

    def test_signal_wait_and_value(self):
        loop = EventLoop()
        sig = Signal()
        got = []

        def waiter():
            value = yield sig
            got.append(value)

        loop.spawn(waiter())
        loop.schedule(10, lambda: sig.trigger("hello"))
        loop.run()
        assert got == ["hello"]

    def test_result(self):
        loop = EventLoop()

        def proc():
            yield 1
            return 42

        p = loop.spawn(proc())
        loop.run()
        assert p.finished and p.result == 42

    def test_error_stored_and_reraised(self):
        loop = EventLoop()

        def proc():
            yield 1
            raise ValueError("boom")

        p = loop.spawn(proc())
        loop.run()
        assert p.finished
        with pytest.raises(ValueError):
            p.check()

    def test_unsupported_yield(self):
        loop = EventLoop()

        def proc():
            yield "nonsense"

        p = loop.spawn(proc())
        loop.run()
        with pytest.raises(SimulationError):
            p.check()

    def test_yield_none_reschedules(self):
        loop = EventLoop()
        trace = []

        def proc():
            yield None
            trace.append(loop.now_ps)

        loop.spawn(proc())
        loop.run()
        assert trace == [0]

    def test_kill_parked_process(self):
        loop = EventLoop()
        sig = Signal()

        def proc():
            yield sig

        p = loop.spawn(proc())
        loop.run()
        assert not p.finished
        p.kill()
        assert p.finished

    def test_kill_drops_waiter_registration(self):
        """Killing a parked process deregisters it from the signal, so the
        signal neither retains the dead process nor resumes it later."""
        loop = EventLoop()
        sig = Signal()

        def proc():
            yield sig

        p = loop.spawn(proc())
        loop.run()
        assert sig.has_waiters
        p.kill()
        assert not sig.has_waiters
        sig.trigger("late")  # must not blow up or resurrect the process
        assert p.finished and p.error is None

    def test_kill_unparked_process_safe(self):
        loop = EventLoop()

        def proc():
            yield 100
            yield 100

        p = loop.spawn(proc())
        loop.run(until_ps=150)
        p.kill()
        assert p.finished
        loop.run()  # the pending resume event is a harmless no-op

    def test_done_signal(self):
        loop = EventLoop()
        done = []

        def child():
            yield 10
            return "ok"

        def parent(child_proc):
            value = yield child_proc.done_signal
            done.append(value)

        c = loop.spawn(child())
        loop.spawn(parent(c))
        loop.run()
        assert done == ["ok"]


class TestWaitAny:
    def test_signal_wins(self):
        loop = EventLoop()
        sig = Signal()
        got = []

        def proc():
            value = yield wait_any(loop, [sig], timeout_ps=1000)
            got.append((value, loop.now_ps))

        loop.spawn(proc())
        loop.schedule(100, lambda: sig.trigger("sig"))
        loop.run()
        assert got == [("sig", 100)]

    def test_timeout_wins(self):
        loop = EventLoop()
        sig = Signal()
        got = []

        def proc():
            value = yield wait_any(loop, [sig], timeout_ps=100)
            got.append((value, loop.now_ps))

        loop.spawn(proc())
        loop.run()
        assert got == [(None, 100)]

    def test_fires_only_once(self):
        loop = EventLoop()
        sig = Signal()
        count = []
        combined = wait_any(loop, [sig], timeout_ps=100)
        combined.wait(lambda v: count.append(v))
        loop.schedule(50, lambda: sig.trigger("first"))
        loop.run()
        assert count == ["first"]

    def test_signal_win_cancels_timeout_event(self):
        """When a signal wins, the pending timeout event is cancelled and
        never fires: the loop goes quiet at the win time, not the timeout."""
        loop = EventLoop()
        sig = Signal()
        got = []
        combined = wait_any(loop, [sig], timeout_ps=10_000)
        combined.wait(got.append)
        loop.schedule(100, lambda: sig.trigger("sig"))
        loop.run()
        assert got == ["sig"]
        assert loop.now_ps == 100  # the cancelled timeout never advanced time

    def test_timeout_deregisters_from_sources(self):
        """When the timeout wins, the combiner is removed from every source
        signal — repeated wait_any calls on long-lived signals must not
        accumulate dead waiters (the recv-poll leak)."""
        loop = EventLoop()
        sig = Signal()
        for _ in range(50):
            wait_any(loop, [sig], timeout_ps=10)
            loop.run()
        assert not sig.has_waiters

    def test_signal_win_deregisters_from_other_sources(self):
        loop = EventLoop()
        winner, loser = Signal(), Signal()
        got = []
        combined = wait_any(loop, [winner, loser], timeout_ps=1000)
        combined.wait(got.append)
        winner.trigger("w")
        assert got == ["w"]
        assert not loser.has_waiters and not winner.has_waiters

    def test_wait_any_without_timeout(self):
        loop = EventLoop()
        a, b = Signal(), Signal()
        got = []
        combined = wait_any(loop, [a, b])
        combined.wait(got.append)
        b.trigger("b")
        a.trigger("a")  # late straggler: ignored, combiner already gone
        assert got == ["b"]
        assert not a.has_waiters and not b.has_waiters


class TestNumericYields:
    def test_float_yields_truncate(self):
        """Float delays (ns-scale math) are accepted and truncate toward
        zero — the regression pin for the once-dead float branch in
        ``Process._advance`` (it was shadowed by the int check)."""
        loop = EventLoop()
        trace = []

        def proc():
            yield 100.9
            trace.append(loop.now_ps)
            yield 0.4
            trace.append(loop.now_ps)

        loop.spawn(proc())
        loop.run()
        assert trace == [100, 100]

    def test_bool_yield_is_a_delay(self):
        """bool subclasses int: True is a 1 ps sleep, not an error."""
        loop = EventLoop()
        trace = []

        def proc():
            yield True
            trace.append(loop.now_ps)

        loop.spawn(proc())
        loop.run()
        assert trace == [1]


class TestWaitAnyCombiner:
    def test_single_object_registered_everywhere(self):
        """One combiner object (not per-signal closures) is the waiter on
        every source signal, and it doubles as the timeout callback."""
        loop = EventLoop()
        a, b = Signal(), Signal()
        wait_any(loop, [a, b], timeout_ps=500)
        assert len(a._waiters) == 1 and len(b._waiters) == 1
        assert a._waiters[0] is b._waiters[0]
        combiner = a._waiters[0]
        assert type(combiner).__qualname__.startswith("wait_any")

    def test_win_deregisters_and_cancels_timeout(self):
        """Deregistration contract: the winning trigger removes the
        combiner from every source and cancels the timeout event."""
        loop = EventLoop()
        a, b = Signal(), Signal()
        got = []
        combined = wait_any(loop, [a, b], timeout_ps=500)
        combined.wait(got.append)
        combiner = a._waiters[0]
        assert loop.pending_events == 1  # the armed timeout
        a.trigger("win")
        assert got == ["win"]
        assert not a.has_waiters and not b.has_waiters
        assert combiner.timeout_event.cancelled
        assert loop.pending_events == 0  # cancel decremented exactly once

    def test_straggler_trigger_is_noop(self):
        loop = EventLoop()
        a, b = Signal(), Signal()
        got = []
        combined = wait_any(loop, [a, b])
        combined.wait(got.append)
        combiner = a._waiters[0]
        a.trigger("first")
        combiner("late-direct-call")  # fired latch: must do nothing
        assert got == ["first"]
