"""Heap vs calendar scheduler differential equivalence.

The house invariant for the pluggable scheduler seam
(``repro.nicsim.eventloop`` / ``repro.nicsim.calqueue``): both backends
share the ``(time_ps, seq, Event)`` entry format and one sequence
counter, so every simulation must produce **bit-for-bit identical**
results — device counters, golden traces, fault fingerprints, metrics
fingerprints — no matter which backend ran it.

These tests reuse the batch-equivalence scenario builders
(``tests/test_batch_equivalence.py``) and drive them through the
``REPRO_SCHEDULER`` environment variable, which every ``EventLoop``
consults at construction — the same mechanism the CI scheduler-matrix
leg uses to run the whole suite under the calendar backend.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import pytest

from repro.faults.plan import builtin_plans
from repro.faults.runner import run_plan
from repro.nicsim.calqueue import CalendarScheduler
from repro.nicsim.eventloop import HeapScheduler
from repro.trace.scenarios import SCENARIOS as TRACE_SCENARIOS, run_scenario
from tests.test_batch_equivalence import (
    _cross_wire_scenario,
    _dict_diff,
    _load_latency_scenario,
    _paced_scenario,
    _quickstart_scenario,
    assert_batch_equivalent,
)

_SCENARIOS = {
    "quickstart": _quickstart_scenario,
    "paced": _paced_scenario,
    "load_latency": _load_latency_scenario,
    "cross_wire": _cross_wire_scenario,
}

_BACKENDS = {"heap": HeapScheduler, "calendar": CalendarScheduler}


def _run(scenario, scheduler: str,
         monkeypatch) -> Tuple[Dict[str, Any], Any]:
    """Run one scenario builder under a forced scheduler backend."""
    monkeypatch.setenv("REPRO_SCHEDULER", scheduler)
    obs, env = scenario(False)
    # The env var must actually have selected the backend under test.
    assert type(env.loop.scheduler) is _BACKENDS[scheduler]
    return obs, env


class TestResultEquivalence:
    @pytest.mark.parametrize("name", sorted(_SCENARIOS))
    def test_identical_observations(self, name, monkeypatch):
        """Counters, clocks, latency samples, and metrics fingerprints
        must not move when the scheduler backend changes."""
        scenario = _SCENARIOS[name]
        heap_obs, _ = _run(scenario, "heap", monkeypatch)
        cal_obs, _ = _run(scenario, "calendar", monkeypatch)
        diff = _dict_diff(heap_obs, cal_obs)
        assert not diff, (
            "calendar scheduler diverged from the heap:\n  "
            + "\n  ".join(diff))

    def test_exercises_the_calendar(self, monkeypatch):
        """The differential is meaningful only if the calendar actually
        stores and pops events (not everything on the fast lane)."""
        _, env = _run(_quickstart_scenario, "calendar", monkeypatch)
        sched = env.loop.scheduler
        assert env.loop.events_processed > 0
        assert env.loop.events_processed > env.loop.lane_events_processed


class TestGoldenTracesUnderCalendar:
    @pytest.mark.parametrize("name", sorted(TRACE_SCENARIOS))
    def test_trace_bytes_identical(self, name, monkeypatch):
        """The committed golden traces are scheduler-independent: the
        calendar backend replays the exact same event sequence."""
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        heap_text = run_scenario(name)
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert run_scenario(name) == heap_text


class TestFaultPlansUnderCalendar:
    @pytest.mark.parametrize("name", ["burst-loss", "flap", "nic-chaos"])
    def test_fingerprints_identical(self, name, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "heap")
        heap_result = run_plan(builtin_plans(seed=3)[name], seed=3)
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert run_plan(builtin_plans(seed=3)[name], seed=3) == heap_result


class TestBatchTierUnderCalendar:
    def test_batch_equivalence_holds_on_calendar(self, monkeypatch):
        """The batch tier's horizon prechecks go through the scheduler
        seam (``entry_count``/``iter_entries``); under the calendar
        backend trains must still execute and stay bit-identical."""
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        stats = assert_batch_equivalent(_quickstart_scenario)
        assert stats["trains"] > 0

    def test_cross_wire_chain_bound_on_calendar(self, monkeypatch):
        """The cross-chain bound extension scans ``iter_entries`` — the
        calendar's bucket-order iteration must not strangle trains."""
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        stats = assert_batch_equivalent(_cross_wire_scenario)
        assert stats["frames"] / stats["trains"] > 4, stats
