"""Tests for the parallel experiment engine (``repro.parallel``).

The acceptance bar is determinism: ``run_parallel(points, fn, jobs=k)``
must be bit-identical to serial execution for any worker count — even
when workers crash and are retried — and ``seed_for`` values are pinned
as goldens so a refactor cannot silently reshuffle every sweep's RNG
streams.
"""

import dataclasses
import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    PointFailedError,
    PointTimeoutError,
    WorkerCrashError,
)
from repro.parallel import (
    Sweep,
    default_jobs,
    point_key,
    run_parallel,
    seed_for,
)
from repro.parallel.engine import _fork_context

HAVE_FORK = _fork_context() is not None

# ---------------------------------------------------------------------------
# experiment functions (module-level so they pickle by reference)


def _mix(point, seed):
    """A deterministic function of (point, seed): the reference result."""
    return (point, ((point * 2654435761 + seed) & 0xFFFFFFFF,
                    seed % 1_000_003))


#: Marker directory for crash injection; exported to forked workers via
#: the environment so the *points* (and therefore the derived seeds) are
#: identical between crashy and clean runs.
_CRASH_DIR_ENV = "REPRO_TEST_CRASH_DIR"


#: Set to the test process pid so crash injection can never fire in the
#: pytest process itself (run_parallel degrades to in-process serial for
#: single-point sweeps, and ``os._exit`` there would kill the test run).
_MAIN_PID_ENV = "REPRO_TEST_MAIN_PID"


def _crash_once_then_mix(point, seed):
    """Crashes the worker on the first attempt per point, then behaves
    exactly like :func:`_mix`.  The first attempt leaves a marker file,
    so the retried attempt (a fresh fork) survives."""
    marker_dir = os.environ[_CRASH_DIR_ENV]
    in_worker = os.environ.get(_MAIN_PID_ENV) != str(os.getpid())
    marker = os.path.join(marker_dir, f"crashed-{point_key(point)}")
    if in_worker and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(3)
    return _mix(point, seed)


def _always_crash(point, seed):
    os._exit(9)


def _sleep_forever(point, seed):
    time.sleep(60)


def _raise_value_error(point, seed):
    raise ValueError(f"deterministic failure for {point!r}")


def _identity_after_stagger(point, seed):
    # Later points finish first: completion order is the reverse of
    # submission order, so this exercises the deterministic merge.
    time.sleep(max(0.0, 0.25 - point * 0.04))
    return point


# ---------------------------------------------------------------------------
# seed derivation goldens


class TestSeedDerivationGoldens:
    """Pinned values: changing any of these reshuffles every sweep's RNG
    streams and must be treated as a breaking change, not a refactor."""

    # Lists of pairs, not dicts: True == 1 would collapse dict entries.
    GOLDEN_SEEDS = [
        (0, 1, 7114803030042122606),
        (0, 2, 3577170029662593486),
        (0, True, 6883846896243759555),
        (0, "1", 1197175835797100896),
        (1, 1, 3588320454349825417),
        (42, (64, "crc"), 8654766902672223965),
        (0, None, 5411143933779652621),
        (123456789, ("fig2-cores", 8), 5259292021914678939),
    ]

    GOLDEN_KEYS = [
        (None, "none"),
        (True, "bool:True"),
        (1, "int:1"),
        (1.5, "float:1.5"),
        ("x", "str:x"),
        (b"\x01\xff", "bytes:01ff"),
        ((1, (2, 3)), "seq:[int:1,seq:[int:2,int:3]]"),
    ]

    def test_seed_values_pinned(self):
        for root, point, expected in self.GOLDEN_SEEDS:
            assert seed_for(root, point) == expected, (root, point)

    def test_point_keys_pinned(self):
        for value, expected in self.GOLDEN_KEYS:
            assert point_key(value) == expected, value

    def test_seed_depends_only_on_canonical_form(self):
        # Lists and tuples are the same sweep; a string point is a value,
        # not a pre-computed key, so it cannot collide with an int point.
        assert seed_for(5, [1, 2]) == seed_for(5, (1, 2))
        assert seed_for(5, "int:1") != seed_for(5, 1)

    def test_seeds_are_63_bit_non_negative(self):
        for i in range(200):
            seed = seed_for(i, i * 7)
            assert 0 <= seed < 2 ** 63

    def test_distinct_points_get_distinct_seeds(self):
        seeds = {seed_for(0, i) for i in range(1000)}
        assert len(seeds) == 1000

    def test_bool_is_not_int_and_list_is_tuple(self):
        assert point_key(True) != point_key(1)
        assert point_key([1, 2]) == point_key((1, 2))
        assert point_key({"a": 1, "b": 2}) == point_key({"b": 2, "a": 1})

    def test_dataclass_canonicalization(self):
        @dataclasses.dataclass
        class P:
            a: int
            b: str

        assert point_key(P(1, "z")) == "obj:P:{a=int:1,b=str:z}"


# ---------------------------------------------------------------------------
# determinism properties


points_strategy = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=0, max_size=6)


class TestParallelEqualsSerial:
    @settings(max_examples=12, deadline=None)
    @given(points=points_strategy, root_seed=st.integers(0, 2 ** 32))
    def test_bit_identical_for_k_1_2_4(self, points, root_seed):
        serial = run_parallel(points, _mix, jobs=1, root_seed=root_seed)
        for k in (2, 4):
            parallel = run_parallel(points, _mix, jobs=k,
                                    root_seed=root_seed)
            assert parallel == serial

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    @settings(max_examples=8, deadline=None)
    @given(points=st.lists(st.integers(0, 1000), min_size=2, max_size=5,
                           unique=True),
           root_seed=st.integers(0, 2 ** 32))
    def test_bit_identical_under_injected_crashes(self, points, root_seed,
                                                  tmp_path_factory):
        serial = run_parallel(points, _mix, jobs=1, root_seed=root_seed)
        for k in (2, 4):
            crash_dir = str(tmp_path_factory.mktemp("crash-markers"))
            os.environ[_CRASH_DIR_ENV] = crash_dir
            os.environ[_MAIN_PID_ENV] = str(os.getpid())
            try:
                # Every worker dies on its first attempt; the bounded
                # retry must reproduce the serial results bit for bit.
                with_crashes = run_parallel(points, _crash_once_then_mix,
                                            jobs=k, root_seed=root_seed,
                                            retries=1)
            finally:
                os.environ.pop(_CRASH_DIR_ENV, None)
                os.environ.pop(_MAIN_PID_ENV, None)
            assert with_crashes == serial
            assert len(os.listdir(crash_dir)) == len(points)

    def test_results_in_submission_order(self):
        points = list(range(6))
        assert run_parallel(points, _identity_after_stagger,
                            jobs=6) == points

    def test_duplicate_points_get_identical_results(self):
        out = run_parallel([5, 5, 5], _mix, jobs=2, root_seed=9)
        assert out[0] == out[1] == out[2]


# ---------------------------------------------------------------------------
# robustness


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
class TestRobustness:
    def test_worker_crash_exhausts_retries(self):
        with pytest.raises(WorkerCrashError, match="died with exit code 9"):
            run_parallel([1, 2], _always_crash, jobs=2, retries=1)

    def test_point_timeout(self):
        start = time.monotonic()
        with pytest.raises(PointTimeoutError, match="exceeded 0.2 s"):
            run_parallel([1, 2], _sleep_forever, jobs=2,
                         timeout_s=0.2, retries=0)
        assert time.monotonic() - start < 30.0

    def test_fn_exception_is_point_failed_parallel(self):
        with pytest.raises(PointFailedError, match="ValueError"):
            run_parallel([1, 2], _raise_value_error, jobs=2)

    def test_crash_then_success_recovers(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_CRASH_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(_MAIN_PID_ENV, str(os.getpid()))
        out = run_parallel([1, 2, 3], _crash_once_then_mix, jobs=2,
                           retries=1)
        assert [v[0] for v in out] == [1, 2, 3]


class TestSerialFallback:
    def test_fn_exception_is_point_failed_serial(self):
        with pytest.raises(PointFailedError, match="ValueError"):
            run_parallel([1, 2], _raise_value_error, jobs=1)

    def test_unpicklable_fn_falls_back_with_warning(self):
        captured = []
        with pytest.warns(RuntimeWarning, match="not picklable"):
            out = run_parallel([1, 2, 3], lambda p, s: captured.append(p)
                               or p * 2, jobs=2)
        assert out == [2, 4, 6]
        assert captured == [1, 2, 3]  # ran in this very process

    def test_single_point_runs_in_process(self):
        sentinel = []
        out = run_parallel([7], lambda p, s: sentinel.append(s) or p,
                           jobs=4)
        assert out == [7] and len(sentinel) == 1

    def test_jobs_one_never_forks(self):
        pid = os.getpid()
        assert run_parallel([1, 2], lambda p, s: os.getpid(),
                            jobs=1) == [pid, pid]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


# ---------------------------------------------------------------------------
# Sweep wrapper


class TestSweep:
    def test_sweep_runs_and_reports(self):
        sweep = Sweep("demo", points=(1, 2, 3), fn=_mix, root_seed=4)
        result = sweep.run(jobs=1)
        assert result.name == "demo"
        assert result.points == [1, 2, 3]
        assert result.values == run_parallel((1, 2, 3), _mix, jobs=1,
                                             root_seed=4)
        assert result.jobs == 1 and result.wall_s >= 0.0
        assert len(result) == 3
        assert result.as_dict()[2] == result.values[1]
        assert list(result) == list(zip(result.points, result.values))

    def test_sweep_jobs_do_not_change_values(self):
        serial = Sweep("demo", points=tuple(range(5)), fn=_mix).run(jobs=1)
        parallel = Sweep("demo", points=tuple(range(5)), fn=_mix).run(jobs=3)
        assert serial.values == parallel.values
