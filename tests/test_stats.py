"""Tests for the statistics counters."""

import io

import pytest

from repro.core.stats import (
    DEFAULT_INTERVAL_NS,
    DeviceRxCounter,
    DeviceTxCounter,
    ManualRxCounter,
    ManualTxCounter,
    PktRxCounter,
)
from repro.errors import ConfigurationError


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestManualTxCounter:
    def test_totals(self):
        clock = FakeClock()
        out = io.StringIO()
        ctr = ManualTxCounter("t", "plain", now_ns=clock, stream=out)
        ctr.update_with_size(10, 64)
        ctr.update_with_size(5, 64)
        assert ctr.total_packets == 15
        assert ctr.total_bytes == 15 * 64

    def test_average_rate(self):
        clock = FakeClock()
        ctr = ManualTxCounter("t", "plain", now_ns=clock, stream=io.StringIO())
        clock.t = 1e9  # one second
        ctr.update_with_size(1_000_000, 64)
        assert ctr.average_pps() == pytest.approx(1e6, rel=1e-3)
        assert ctr.average_mbit() == pytest.approx(512.0, rel=1e-3)

    def test_interval_rollover(self):
        clock = FakeClock()
        out = io.StringIO()
        ctr = ManualTxCounter("t", "plain", now_ns=clock, stream=out,
                              interval_ns=1e9)
        ctr.update_with_size(100, 64)
        clock.t = 1.5e9
        ctr.update_with_size(100, 64)
        assert len(ctr.interval_pps) == 1
        assert ctr.interval_pps[0] == pytest.approx(200.0)

    def test_stddev_over_intervals(self):
        clock = FakeClock()
        ctr = ManualTxCounter("t", "plain", now_ns=clock, stream=io.StringIO(),
                              interval_ns=1e9)
        for i, n in enumerate((100, 200, 300)):
            ctr.update_with_size(n, 64)
            clock.t = (i + 1) * 1e9 + 1
            ctr.update_with_size(0, 64)  # trigger rollover
        assert ctr.stddev_pps() > 0

    def test_finalize_plain_output(self):
        out = io.StringIO()
        clock = FakeClock()
        ctr = ManualTxCounter("flow", "plain", now_ns=clock, stream=out)
        clock.t = 1e9
        ctr.update_with_size(42, 64)
        ctr.finalize()
        text = out.getvalue()
        assert "flow" in text and "42 packets" in text

    def test_finalize_csv_output(self):
        out = io.StringIO()
        ctr = ManualTxCounter("flow", "csv", now_ns=FakeClock(), stream=out)
        ctr.update_with_size(1, 64)
        ctr.finalize()
        lines = out.getvalue().strip().splitlines()
        assert lines[0].startswith("name,direction,")
        assert lines[-1].startswith("flow,TX,total,1,64")

    def test_update_after_finalize_rejected(self):
        ctr = ManualTxCounter("t", "csv", now_ns=FakeClock(), stream=io.StringIO())
        ctr.finalize()
        with pytest.raises(ConfigurationError):
            ctr.update_with_size(1, 64)

    def test_finalize_idempotent(self):
        out = io.StringIO()
        ctr = ManualTxCounter("t", "plain", now_ns=FakeClock(), stream=out)
        ctr.finalize()
        before = out.getvalue()
        ctr.finalize()
        assert out.getvalue() == before

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError):
            ManualTxCounter("t", "json")


class TestOtherCounters:
    def test_manual_rx(self):
        ctr = ManualRxCounter("r", "csv", now_ns=FakeClock(), stream=io.StringIO())
        ctr.update(3, 192)
        assert ctr.direction == "RX"
        assert ctr.total_bytes == 192

    def test_pkt_rx_counter_counts_wire_bytes(self):
        class Buf:
            class pkt:
                size = 60
        ctr = PktRxCounter("p", "csv", now_ns=FakeClock(), stream=io.StringIO())
        ctr.count_packet(Buf())
        assert ctr.total_packets == 1
        assert ctr.total_bytes == 64  # FCS included

    def test_device_counters_sample_delta(self):
        class Dev:
            port_id = 0
            tx_packets = 0
            tx_bytes = 0
            rx_packets = 0
            rx_bytes = 0
        dev = Dev()
        tx = DeviceTxCounter(dev, "csv", now_ns=FakeClock(), stream=io.StringIO())
        dev.tx_packets, dev.tx_bytes = 10, 640
        tx.sample()
        dev.tx_packets, dev.tx_bytes = 15, 960
        tx.sample()
        assert tx.total_packets == 15
        assert tx.total_bytes == 960

        rx = DeviceRxCounter(dev, "csv", now_ns=FakeClock(), stream=io.StringIO())
        dev.rx_packets, dev.rx_bytes = 7, 448
        rx.sample()
        assert rx.total_packets == 7

    def test_default_interval_is_one_second(self):
        assert DEFAULT_INTERVAL_NS == 1e9
