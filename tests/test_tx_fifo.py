"""Unit tests for the NIC's on-chip transmit FIFO (Section 3.2)."""

import pytest

from repro import units
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Wire
from repro.nicsim.nic import CHIP_X540, NicPort, SimFrame


def frame(size=60):
    return SimFrame(b"\x00" * size)


def port_with_wire(n_tx_queues=1):
    loop = EventLoop()
    port = NicPort(loop, chip=CHIP_X540, n_tx_queues=n_tx_queues)
    port.attach_wire(Wire(loop, port.speed_bps))
    return loop, port


class TestPrefetch:
    def test_unpaced_ring_drains_into_fifo(self):
        loop, port = port_with_wire()
        queue = port.get_tx_queue(0)
        queue.enqueue([frame() for _ in range(100)])
        # The kick at the end of enqueue prefetched everything.
        assert len(queue.ring) == 0
        assert len(port._fifo) >= 99  # one may already be at the MAC
        loop.run()
        assert port.tx_packets == 100

    def test_fifo_byte_capacity_respected(self):
        loop, port = port_with_wire()
        queue = port.get_tx_queue(0)
        n = 4000  # more frames than the FIFO can hold
        accepted = 0
        while accepted < n:
            got = queue.enqueue([frame() for _ in range(n - accepted)])
            if got == 0:
                break
            accepted += got
        assert port._fifo_bytes <= CHIP_X540.tx_fifo_bytes
        # FIFO full + ring full: 160 kB / 64 B + 512 descriptors.
        expected_capacity = CHIP_X540.tx_fifo_bytes // 64 + 512
        assert accepted == pytest.approx(expected_capacity, abs=2)

    def test_paced_queue_not_prefetched(self):
        """Rate-limited queues must keep their pacing: no eager fetch."""
        loop, port = port_with_wire()
        queue = port.get_tx_queue(0)
        queue.set_rate_pps(1e6, 64)
        queue.enqueue([frame() for _ in range(50)])
        assert port._fifo_bytes == 0
        assert len(queue.ring) >= 49
        loop.run()
        assert port.tx_packets == 50  # still all transmitted, just paced

    def test_mixed_queues(self):
        """An unpaced queue uses the FIFO while a paced one stays on its
        schedule; both drain fully."""
        loop, port = port_with_wire(n_tx_queues=2)
        paced = port.get_tx_queue(0)
        paced.set_rate_pps(0.2e6, 64)
        unpaced = port.get_tx_queue(1)
        paced.enqueue([frame() for _ in range(10)])
        unpaced.enqueue([frame() for _ in range(10)])
        loop.run()
        assert port.tx_packets == 20
        assert paced.tx_packets == 10
        assert unpaced.tx_packets == 10

    def test_fifo_bytes_accounting_returns_to_zero(self):
        loop, port = port_with_wire()
        port.get_tx_queue(0).enqueue([frame() for _ in range(200)])
        loop.run()
        assert port._fifo_bytes == 0
        assert len(port._fifo) == 0

    def test_recycle_happens_at_prefetch(self):
        """Buffers return to the pool when the DMA fetches them — long
        before transmission completes."""
        loop, port = port_with_wire()
        recycled = []
        frames = [frame() for _ in range(10)]
        for f in frames:
            f.meta["recycle"] = lambda f=f: recycled.append(f.seq)
        port.get_tx_queue(0).enqueue(frames)
        # All recycles fired synchronously at enqueue-kick time.
        assert len(recycled) == 10
        assert port.tx_packets <= 1  # transmission has barely started

    def test_wire_order_preserved(self):
        loop, port = port_with_wire()
        order = []
        port.tx_observers.append(lambda f, t: order.append(f.seq))
        frames = [frame() for _ in range(30)]
        expected = [f.seq for f in frames]
        port.get_tx_queue(0).enqueue(frames)
        loop.run()
        assert order == expected
