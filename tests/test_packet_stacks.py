"""Tests for PacketData and the protocol stack views."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PacketError
from repro.packet import PacketData
from repro.packet.ethernet import EtherType
from repro.packet.ip4 import IpProtocol
from repro.packet.packet import MIN_BUFFER_SIZE


class TestPacketData:
    def test_default_size(self):
        assert PacketData().size == MIN_BUFFER_SIZE

    def test_rejects_negative(self):
        with pytest.raises(PacketError):
            PacketData(-1)

    def test_resize_within_capacity(self):
        pkt = PacketData(60, capacity=128)
        pkt.size = 100
        assert pkt.size == 100

    def test_resize_beyond_capacity(self):
        pkt = PacketData(60, capacity=64)
        with pytest.raises(PacketError):
            pkt.size = 65

    def test_wrap_shares_memory(self):
        data = bytearray(64)
        pkt = PacketData.wrap(data, 60)
        pkt.data[0] = 0xAB
        assert data[0] == 0xAB

    def test_wrap_size_check(self):
        with pytest.raises(PacketError):
            PacketData.wrap(bytearray(10), 20)

    def test_fill_payload_repeats_pattern(self):
        pkt = PacketData(20)
        pkt.fill_payload(b"ab", 14)
        assert pkt.bytes()[14:] == b"ababab"

    def test_fill_payload_empty_pattern(self):
        with pytest.raises(PacketError):
            PacketData(20).fill_payload(b"", 0)

    def test_bytes_respects_size(self):
        pkt = PacketData(10, capacity=100)
        assert len(pkt.bytes()) == 10


class TestUdp4Fill:
    def test_listing2_fill(self):
        """The exact fill call of the paper's Listing 2."""
        pkt = PacketData(124)
        p = pkt.udp_packet
        p.fill(
            pkt_length=124,
            eth_src="02:00:00:00:00:01",
            eth_dst="10:11:12:13:14:15",
            ip_dst="192.168.1.1",
            udp_src=1234,
            udp_dst=42,
        )
        assert pkt.size == 124
        assert str(p.eth.dst) == "10:11:12:13:14:15"
        assert p.eth.ether_type == EtherType.IP4
        assert p.ip.version == 4
        assert str(p.ip.dst) == "192.168.1.1"
        assert p.ip.protocol == IpProtocol.UDP
        assert p.ip.length == 124 - 14
        assert p.udp.src_port == 1234
        assert p.udp.dst_port == 42
        assert p.udp.length == 124 - 14 - 20

    def test_fill_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            PacketData(60).udp_packet.fill(bogus_field=1)

    def test_mutation_after_fill(self):
        pkt = PacketData(60)
        p = pkt.udp_packet
        p.fill(ip_dst="10.0.0.1")
        p.ip.src = p.ip.src + 5
        assert int(p.ip.src) == 5

    def test_udp_checksum_software(self):
        pkt = PacketData(60)
        p = pkt.udp_packet
        p.fill(ip_src="10.0.0.1", ip_dst="10.0.0.2", udp_src=1, udp_dst=2)
        p.calculate_udp_checksum()
        assert p.verify_udp_checksum()

    def test_udp_checksum_detects_corruption(self):
        pkt = PacketData(60)
        p = pkt.udp_packet
        p.fill(ip_src="10.0.0.1", ip_dst="10.0.0.2", udp_src=1, udp_dst=2)
        p.calculate_udp_checksum()
        pkt.data[50] ^= 0x55
        assert not p.verify_udp_checksum()

    def test_zero_checksum_means_unused(self):
        pkt = PacketData(60)
        p = pkt.udp_packet
        p.fill()
        p.udp.checksum = 0
        assert p.verify_udp_checksum()

    @given(st.integers(min_value=46, max_value=1514))
    def test_lengths_consistent(self, size):
        pkt = PacketData(size, capacity=2048)
        p = pkt.udp_packet
        p.fill(pkt_length=size)
        assert p.ip.length == size - 14
        assert p.udp.length == size - 34


class TestOtherStacks:
    def test_tcp_fill(self):
        p = PacketData(60).tcp_packet
        p.fill(tcp_src=80, tcp_dst=1024, tcp_seq=1000, tcp_flags=0x12)
        assert p.ip.protocol == IpProtocol.TCP
        assert p.tcp.src_port == 80
        assert p.tcp.flags == 0x12
        p.calculate_tcp_checksum()

    def test_icmp_fill(self):
        p = PacketData(60).icmp_packet
        p.fill(icmp_type=8, icmp_id=7, icmp_seq=1)
        assert p.ip.protocol == IpProtocol.ICMP
        p.calculate_icmp_checksum()

    def test_arp_fill(self):
        p = PacketData(60).arp_packet
        p.fill(arp_operation=2, arp_proto_src="10.0.0.1", arp_proto_dst="10.0.0.2")
        assert p.eth.ether_type == EtherType.ARP
        assert p.arp.operation == 2

    def test_esp_fill(self):
        p = PacketData(60).esp_packet
        p.fill(esp_spi=0x1234, esp_seq=9)
        assert p.ip.protocol == IpProtocol.ESP
        assert p.esp.spi == 0x1234

    def test_ip6_fill(self):
        p = PacketData(74).ip6_packet
        p.fill(pkt_length=74, ip_src="2001:db8::1", ip_dst="2001:db8::2")
        assert p.eth.ether_type == EtherType.IP6
        assert p.ip.payload_length == 74 - 54

    def test_udp6_fill_and_checksum(self):
        p = PacketData(82).udp6_packet
        p.fill(pkt_length=82, ip_src="fe80::1", ip_dst="fe80::2",
               udp_src=5, udp_dst=6)
        assert p.udp.length == 82 - 54
        p.calculate_udp_checksum()
        assert p.udp.checksum != 0

    def test_ptp_eth_fill(self):
        p = PacketData(60).ptp_packet
        p.fill(ptp_sequence=99)
        assert p.eth.ether_type == EtherType.PTP
        assert p.ptp.version == 2
        assert p.ptp.sequence_id == 99

    def test_udp_ptp_fill(self):
        p = PacketData(80).udp_ptp_packet
        p.fill(pkt_length=80, ptp_sequence=7)
        assert p.udp.dst_port == 319
        assert p.ptp.sequence_id == 7

    def test_stack_needs_capacity(self):
        pkt = PacketData(10, capacity=20)
        with pytest.raises(PacketError):
            pkt.udp_packet  # noqa: B018 - property access raises


class TestClassify:
    @pytest.mark.parametrize("build,expected", [
        (lambda p: p.udp_packet.fill(), "udp4"),
        (lambda p: p.tcp_packet.fill(), "tcp4"),
        (lambda p: p.icmp_packet.fill(), "icmp4"),
        (lambda p: p.arp_packet.fill(), "arp"),
        (lambda p: p.ptp_packet.fill(), "ptp"),
        (lambda p: p.udp6_packet.fill(), "udp6"),
        (lambda p: p.eth_packet.fill(eth_type=0x1234), "eth"),
    ])
    def test_classification(self, build, expected):
        pkt = PacketData(80)
        build(pkt)
        assert pkt.classify() == expected

    def test_classify_short(self):
        assert PacketData(8).classify() == "raw"

    def test_classify_ip4_unknown_protocol(self):
        pkt = PacketData(60)
        p = pkt.ip_packet
        p.fill(ip_protocol=99)
        assert pkt.classify() == "ip4"
