"""Unit tests for the calendar-queue scheduler and the scheduler seam."""

import pytest

from repro.errors import ConfigurationError
from repro.nicsim.calqueue import _MIN_BUCKETS, CalendarScheduler
from repro.nicsim.eventloop import (
    EventLoop,
    HeapScheduler,
    resolve_scheduler,
)


class TestResolveScheduler:
    def test_default_is_heap(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert type(resolve_scheduler()) is HeapScheduler

    def test_names(self):
        assert type(resolve_scheduler("heap")) is HeapScheduler
        assert type(resolve_scheduler("calendar")) is CalendarScheduler

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert type(EventLoop().scheduler) is CalendarScheduler

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert type(EventLoop(scheduler="heap").scheduler) is HeapScheduler

    def test_instance_passthrough(self):
        sched = CalendarScheduler()
        assert EventLoop(scheduler=sched).scheduler is sched

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_scheduler("splay-tree")

    def test_env_reaches_moongen_env(self, monkeypatch):
        from repro import MoonGenEnv

        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert type(MoonGenEnv(seed=1).loop.scheduler) is HeapScheduler
        env = MoonGenEnv(seed=1, scheduler="calendar")
        assert type(env.loop.scheduler) is CalendarScheduler


class TestCalendarGeometry:
    def test_bucket_count_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            CalendarScheduler(buckets=24)

    def test_grows_and_shrinks_with_occupancy(self):
        loop = EventLoop(scheduler="calendar")
        sched = loop.scheduler
        for i in range(4 * _MIN_BUCKETS * 8):
            loop.schedule(1 + i * 13, lambda: None)
        assert sched._nbuckets > _MIN_BUCKETS
        grown = sched.resizes
        assert grown > 0
        loop.run()
        # Draining shrinks the ring back down (hysteresis permitting).
        assert sched.resizes > grown
        assert sched.live == 0 and sched.entry_count() == 0

    def test_insert_before_window_rewinds_cursor(self):
        """An insert earlier than the cursor's current day must rewind the
        search window, not wait a whole year for the ring to wrap."""
        loop = EventLoop(scheduler="calendar")
        fired = []
        loop.schedule(500_000, lambda: fired.append("far"))
        loop.run(until_ps=400_000)  # cursor walked well past the early days
        loop.schedule_at(410_000, lambda: fired.append("early"))
        loop.run()
        assert fired == ["early", "far"]

    def test_sparse_queue_direct_search(self):
        """Entries much sparser than one bucket year are still found (the
        direct-search escape), and repeated escapes re-derive the width."""
        loop = EventLoop(scheduler="calendar")
        fired = []
        for i in range(8):
            # Gaps of ~10^12 ps dwarf any initial year span.
            loop.schedule(1 + i * 10**12, lambda i=i: fired.append(i))
        loop.run()
        assert fired == list(range(8))

    def test_compaction_on_cancel_churn(self):
        loop = EventLoop(scheduler="calendar")
        sched = loop.scheduler
        keep = [loop.schedule(1000 + i, lambda: None) for i in range(100)]
        dead = [loop.schedule(2000 + i, lambda: None) for i in range(400)]
        for event in dead:
            event.cancel()
        assert sched.compactions >= 1
        # Compaction keeps lingering cancelled entries below half the
        # structure; the live count stays exact throughout.
        assert sched.entry_count() < 2 * len(keep)
        assert loop.pending_events == len(keep)
        loop.run()
        assert loop.pending_events == 0

    def test_pop_due_respects_bound_without_popping(self):
        sched = CalendarScheduler()
        loop = EventLoop(scheduler=sched)
        loop.schedule(100, lambda: None)
        assert sched.pop_due(50) is None
        assert sched.live == 1  # nothing was popped
        assert sched.peek_time() == 100
        event = sched.pop_due(100)
        assert event is not None and event.time_ps == 100
        assert sched.live == 0

    def test_metrics_gauges(self):
        sched = CalendarScheduler()
        gauges = sched.metrics()
        for key in ("entries", "live", "compactions", "buckets",
                    "day_width_ps", "resizes", "max_occupancy"):
            assert key in gauges and callable(gauges[key])
        assert gauges["buckets"]() == _MIN_BUCKETS
        assert gauges["live"]() == 0


class TestExactPendingCounts:
    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_cancel_decrements_exactly_once(self, scheduler):
        loop = EventLoop(scheduler=scheduler)
        event = loop.schedule(100, lambda: None)
        assert loop.pending_events == 1
        event.cancel()
        assert loop.pending_events == 0
        event.cancel()  # double cancel: no double decrement
        assert loop.pending_events == 0

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_cancel_after_fire_is_noop(self, scheduler):
        loop = EventLoop(scheduler=scheduler)
        event = loop.schedule(10, lambda: None)
        pending = loop.schedule(100, lambda: None)
        loop.run(until_ps=50)
        event.cancel()  # stale handle: already fired
        assert loop.pending_events == 1
        assert pending is not None

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_lane_events_counted(self, scheduler):
        loop = EventLoop(scheduler=scheduler)
        fired = []
        loop.schedule(0, lambda: fired.append(loop.now_ps))
        lane_event = loop.schedule(0, lambda: fired.append(loop.now_ps))
        loop.schedule(10, lambda: None)
        assert loop.pending_events == 3
        assert loop.next_event_time_ps() == 0
        lane_event.cancel()
        assert loop.pending_events == 2
        loop.run()
        assert fired == [0] and loop.pending_events == 0
