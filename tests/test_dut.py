"""Tests for the DuT models: ITR, fastpath forwarder, event forwarder, switch."""

import numpy as np
import pytest

from repro import MoonGenEnv, units
from repro.dut import (
    DutConfig,
    InterruptModerator,
    ItrConfig,
    OvsForwarder,
    StoreAndForwardSwitch,
    simulate_forwarder,
)
from repro.dut.interrupts import BULK_LATENCY, LOW_LATENCY, LOWEST_LATENCY
from repro.nicsim.nic import SimFrame


def cbr_arrivals(pps, n, start=0.0):
    return start + np.arange(n) * (1e9 / pps)


class TestInterruptModerator:
    def test_intervals_by_class(self):
        cfg = ItrConfig()
        m = InterruptModerator(cfg)
        assert cfg.interval_ns(LOWEST_LATENCY) < cfg.interval_ns(LOW_LATENCY)
        assert cfg.interval_ns(LOW_LATENCY) < cfg.interval_ns(BULK_LATENCY)

    def test_moderation_caps_rate(self):
        m = InterruptModerator(ItrConfig(lowest_rate_hz=100_000))
        m.fire(0.0)
        assert m.next_allowed_ns() == pytest.approx(10_000.0)

    def test_clump_degrades_class(self):
        m = InterruptModerator(ItrConfig())
        for t in (0.0, 67.2, 134.4):  # back-to-back at 10 GbE
            m.observe_arrival(t)
        m.fire(200.0)
        assert m.latency_class == LOW_LATENCY
        for t in (1000.0, 1067.2, 1134.4):
            m.observe_arrival(t)
        m.fire(1200.0)
        assert m.latency_class == BULK_LATENCY

    def test_sparse_traffic_recovers(self):
        m = InterruptModerator(ItrConfig())
        m.latency_class = BULK_LATENCY
        m.observe_arrival(0.0)
        m.fire(100.0)
        assert m.latency_class == LOW_LATENCY
        m.observe_arrival(10_000.0)
        m.fire(10_100.0)
        assert m.latency_class == LOWEST_LATENCY

    def test_bytes_degrade_without_clumps(self):
        m = InterruptModerator(ItrConfig())
        m.observe_arrival(0.0)
        m.account(20, 30_000)  # large transfer
        m.fire(100.0)
        assert m.latency_class == LOW_LATENCY

    def test_class_moves_one_step_per_interrupt(self):
        m = InterruptModerator(ItrConfig())
        for t in range(6):
            m.observe_arrival(t * 10.0)  # extreme clumping
        m.fire(100.0)
        assert m.latency_class == LOW_LATENCY  # not straight to bulk

    def test_rate_hz(self):
        m = InterruptModerator(ItrConfig())
        m.fire(0.0)
        m.fire(1000.0)
        assert m.rate_hz(1e9) == pytest.approx(2.0)
        assert m.rate_hz(0.0) == 0.0


class TestFastpath:
    def test_light_load_latency_is_pipeline_plus_service(self):
        res = simulate_forwarder(cbr_arrivals(10e3, 100), pipeline_ns=15_000)
        lat = res.latencies_ns[~np.isnan(res.latencies_ns)]
        assert lat.min() >= 15_000
        assert np.median(lat) < 20_000

    def test_capacity_about_1_9_mpps(self):
        """Section 8.3: the DuT overloads at about 1.9 Mpps."""
        under = simulate_forwarder(cbr_arrivals(1.8e6, 100_000))
        over = simulate_forwarder(cbr_arrivals(2.1e6, 100_000))
        assert under.drop_rate == 0.0
        assert over.dropped > 0

    def test_overload_latency_near_2ms(self):
        """All buffers full: ~2 ms latency (Section 8.3)."""
        res = simulate_forwarder(cbr_arrivals(2.5e6, 200_000))
        lat = res.latencies_ns[~np.isnan(res.latencies_ns)]
        tail = np.median(lat[len(lat) // 2:])
        assert tail == pytest.approx(2.2e6, rel=0.15)

    def test_drops_do_not_consume_service(self):
        res = simulate_forwarder(cbr_arrivals(3e6, 100_000))
        deps = res.departures_ns[~np.isnan(res.departures_ns)]
        forwarded_rate = (len(deps) - 1) / ((deps[-1] - deps[0]) / 1e9)
        assert forwarded_rate == pytest.approx(1.9e6, rel=0.03)

    def test_interrupt_rate_caps_at_lowest_class(self):
        res = simulate_forwarder(cbr_arrivals(1.0e6, 50_000))
        assert res.interrupt_rate_hz == pytest.approx(150e3, rel=0.05)

    def test_interrupt_rate_tracks_low_load(self):
        res = simulate_forwarder(cbr_arrivals(50e3, 20_000))
        assert res.interrupt_rate_hz == pytest.approx(50e3, rel=0.05)

    def test_bursty_load_reduces_interrupts(self):
        """Figure 7: micro-bursts collapse the interrupt rate."""
        from repro.generators import ZsendModel
        z = ZsendModel(speed_bps=units.SPEED_10G)
        bursty = simulate_forwarder(z.departures_ns(0.5e6, 25_000, seed=1))
        cbr = simulate_forwarder(cbr_arrivals(0.5e6, 25_000))
        assert bursty.interrupt_rate_hz < cbr.interrupt_rate_hz / 4

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            simulate_forwarder(np.array([10.0, 5.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            simulate_forwarder(np.array([]))

    def test_percentiles(self):
        res = simulate_forwarder(cbr_arrivals(1e6, 10_000))
        q1, med, q3 = res.latency_percentiles()
        assert q1 <= med <= q3

    def test_result_counts(self):
        res = simulate_forwarder(cbr_arrivals(1e6, 1000))
        assert res.forwarded + res.dropped == 1000


class TestOvsForwarder:
    def run_forwarder(self, frames_with_times, config=None):
        env = MoonGenEnv()
        dut = OvsForwarder(env.loop, config)
        out = []
        from repro.nicsim.link import Wire
        wire = Wire(env.loop, units.SPEED_10G)
        wire.connect(lambda f, t: out.append((f, t)))
        dut.connect_output(wire)
        for frame, t in frames_with_times:
            env.loop.schedule_at(round(t * 1000), lambda f=frame: dut.ingress(
                f, env.loop.now_ps))
        env.loop.run()
        return dut, out

    def frame(self, fcs_ok=True):
        return SimFrame(b"\x00" * 60, fcs_ok=fcs_ok)

    def test_forwards_valid(self):
        dut, out = self.run_forwarder([(self.frame(), i * 10_000.0)
                                       for i in range(5)])
        assert dut.forwarded == 5
        assert len(out) == 5

    def test_drops_bad_crc_in_hardware(self):
        """Section 8.2: invalid packets cause no system activity."""
        frames = [(self.frame(fcs_ok=False), i * 1000.0) for i in range(50)]
        dut, out = self.run_forwarder(frames)
        assert dut.rx_crc_errors == 50
        assert dut.forwarded == 0
        assert dut.interrupts == 0  # no software ever woke up

    def test_ring_overflow(self):
        config = DutConfig(ring_size=4)
        frames = [(self.frame(), i * 0.1) for i in range(100)]
        dut, out = self.run_forwarder(frames, config)
        assert dut.rx_dropped > 0
        assert dut.forwarded + dut.rx_dropped == 100

    def test_latency_includes_pipeline(self):
        config = DutConfig(pipeline_ns=10_000)
        dut, out = self.run_forwarder([(self.frame(), 0.0)], config)
        frame, t = out[0]
        latency_ns = frame.meta["dut_departure_ps"] / 1000 - 0.0
        assert latency_ns >= 10_000

    def test_interrupt_rate_helper(self):
        frames = [(self.frame(), i * 100_000.0) for i in range(20)]
        dut, out = self.run_forwarder(frames)
        assert dut.interrupt_rate_hz() > 0

    def test_matches_fastpath_forwarding(self):
        """Event-driven and fastpath forwarders agree on throughput."""
        arrivals = cbr_arrivals(1.0e6, 2000)
        fast = simulate_forwarder(arrivals)
        frames = [(self.frame(), t) for t in arrivals]
        dut, out = self.run_forwarder(frames)
        assert dut.forwarded == fast.forwarded


class TestSwitch:
    def test_drops_invalid_forwards_valid(self):
        env = MoonGenEnv()
        switch = StoreAndForwardSwitch(env.loop)
        out = []
        from repro.nicsim.link import Wire
        wire = Wire(env.loop, units.SPEED_10G)
        wire.connect(lambda f, t: out.append(f))
        switch.connect_output(wire)
        switch.ingress(SimFrame(b"\x00" * 60, fcs_ok=False), 0)
        switch.ingress(SimFrame(b"\x00" * 60, fcs_ok=True), 0)
        env.loop.run()
        assert switch.rx_crc_errors == 1
        assert switch.tx_packets == 1
        assert len(out) == 1

    def test_forwarding_latency(self):
        env = MoonGenEnv()
        switch = StoreAndForwardSwitch(env.loop, forwarding_latency_ns=800.0)
        times = []
        from repro.nicsim.link import Wire
        wire = Wire(env.loop, units.SPEED_10G)
        wire.connect(lambda f, t: times.append(t))
        switch.connect_output(wire)
        switch.ingress(SimFrame(b"\x00" * 60), 0)
        env.loop.run()
        assert times[0] >= 800_000  # 800 ns + serialization

    def test_queue_limit(self):
        env = MoonGenEnv()
        switch = StoreAndForwardSwitch(env.loop, queue_bytes=128)
        for _ in range(5):
            switch.ingress(SimFrame(b"\x00" * 60), 0)
        assert switch.dropped == 3  # two 64 B frames fit

    def test_multiplexes_streams(self):
        """Section 8.4: several generator streams merge onto one output."""
        env = MoonGenEnv()
        switch = StoreAndForwardSwitch(env.loop)
        out = []
        from repro.nicsim.link import Wire
        wire = Wire(env.loop, units.SPEED_10G)
        wire.connect(lambda f, t: out.append(t))
        switch.connect_output(wire)
        for t in (0, 100, 200):
            env.loop.schedule_at(t * 1000, lambda: switch.ingress(
                SimFrame(b"\x00" * 60), env.loop.now_ps))
        env.loop.run()
        assert len(out) == 3
        # Output serialization is back-to-back or better spaced.
        gaps = np.diff(out)
        assert np.all(gaps >= units.frame_time_ps(64, units.SPEED_10G) - 1)
