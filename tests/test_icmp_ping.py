"""Tests for the ICMP echo responder and software-RTT ping client."""

import pytest

from repro import MoonGenEnv
from repro.core.icmp_ping import IcmpResponder, PingClient


def build():
    env = MoonGenEnv(seed=3)
    a = env.config_device(0, tx_queues=1, rx_queues=1)
    b = env.config_device(1, tx_queues=1, rx_queues=1)
    env.connect(a, b)
    return env, a, b


class TestPingRoundtrip:
    def test_all_replies_received(self):
        env, a, b = build()
        responder = IcmpResponder(env, b, "10.0.0.2")
        client = PingClient(env, a, "10.0.0.1", "10.0.0.2", b.mac)
        env.launch(responder.task)
        env.launch(client.task, 5, 500_000.0)
        env.wait_for_slaves(duration_ns=20_000_000)
        assert responder.answered == 5
        assert len(client.rtts) == 5
        assert client.lost == 0

    def test_rtt_magnitude(self):
        """Software RTTs include processing slack: microseconds, not the
        hardware engine's nanoseconds (the Section 6 motivation)."""
        env, a, b = build()
        responder = IcmpResponder(env, b, "10.0.0.2")
        client = PingClient(env, a, "10.0.0.1", "10.0.0.2", b.mac)
        env.launch(responder.task)
        env.launch(client.task, 5, 200_000.0)
        env.wait_for_slaves(duration_ns=20_000_000)
        assert client.rtts.min() > 100.0  # well above the ~0.1 µs wire time

    def test_wrong_address_unanswered(self):
        env, a, b = build()
        responder = IcmpResponder(env, b, "10.0.0.2")
        client = PingClient(env, a, "10.0.0.1", "10.0.0.99", b.mac)
        env.launch(responder.task)
        env.launch(client.task, 2, 100_000.0, 1_000_000.0)
        env.wait_for_slaves(duration_ns=10_000_000)
        assert responder.answered == 0
        assert client.lost == 2

    def test_identifier_mismatch_ignored(self):
        env, a, b = build()
        responder = IcmpResponder(env, b, "10.0.0.2")
        c1 = PingClient(env, a, "10.0.0.1", "10.0.0.2", b.mac, identifier=1)
        env.launch(responder.task)
        env.launch(c1.task, 3, 300_000.0)
        env.wait_for_slaves(duration_ns=15_000_000)
        # The responder echoes the identifier; the client matched its own.
        assert len(c1.rtts) == 3

    def test_reply_has_valid_ip_checksum(self):
        env, a, b = build()
        responder = IcmpResponder(env, b, "10.0.0.2")
        env.launch(responder.task)

        def prober(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(1)
            bufs.alloc(64)
            bufs[0].pkt.icmp_packet.fill(
                pkt_length=64, eth_src=str(a.mac), eth_dst=str(b.mac),
                ip_src="10.0.0.1", ip_dst="10.0.0.2",
                icmp_type=8, icmp_id=7, icmp_seq=1,
            )
            yield queue.send(bufs)
            rx = mem.buf_array(4)
            n = yield a.get_rx_queue(0).recv(rx, timeout_ns=5_000_000)
            replies = []
            for i in range(n):
                if rx[i].pkt.classify() == "icmp4":
                    replies.append(rx[i].pkt.ip_packet.ip.verify_checksum())
            return replies

        task = env.launch(prober, env, a.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=10_000_000)
        assert task.result == [True]
