"""Tests for Flow Director and RSS receive filters (Section 3.3)."""

import pytest

from repro import MoonGenEnv
from repro.core.filters import (
    FlowDirector,
    RssHash,
    install_flow_director,
    install_rss,
)
from repro.errors import ConfigurationError
from repro.nicsim.nic import SimFrame
from repro.packet import PacketData


def udp_frame(dst_port=42, src_ip="10.0.0.1", src_port=1000):
    pkt = PacketData(60)
    pkt.udp_packet.fill(pkt_length=60, ip_src=src_ip, udp_src=src_port,
                        udp_dst=dst_port)
    return SimFrame(pkt.bytes())


class TestFlowDirector:
    def test_rule_match(self):
        director = FlowDirector(default_queue=0)
        director.add_rule(43, 1)
        assert director(udp_frame(dst_port=43)) == 1
        assert director(udp_frame(dst_port=42)) == 0
        assert director.matched == 1
        assert director.missed == 1

    def test_non_udp_goes_default(self):
        director = FlowDirector(default_queue=2)
        director.add_rule(43, 1)
        pkt = PacketData(60)
        pkt.ptp_packet.fill()
        assert director(SimFrame(pkt.bytes())) == 2

    def test_rule_removal(self):
        director = FlowDirector()
        director.add_rule(43, 1)
        director.remove_rule(43)
        assert director(udp_frame(dst_port=43)) == 0

    def test_bad_port_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowDirector().add_rule(70000, 1)

    def test_install_validates_queues(self):
        env = MoonGenEnv()
        dev = env.config_device(0, rx_queues=2)
        with pytest.raises(ConfigurationError):
            install_flow_director(dev, {42: 5})

    def test_end_to_end_steering(self):
        """The QoS setup: two flows steered to separate queues."""
        env = MoonGenEnv(seed=1)
        tx = env.config_device(0, tx_queues=2)
        rx = env.config_device(1, rx_queues=2)
        env.connect(tx, rx)
        install_flow_director(rx, {42: 0, 43: 1})

        def sender(env, queue, port):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60, udp_dst=port))
            bufs = mem.buf_array(8)
            bufs.alloc(60)
            yield queue.send(bufs)

        env.launch(sender, env, tx.get_tx_queue(0), 42)
        env.launch(sender, env, tx.get_tx_queue(1), 43)
        env.wait_for_slaves(duration_ns=1_000_000)
        assert rx.get_rx_queue(0).rx_packets == 8
        assert rx.get_rx_queue(1).rx_packets == 8


class TestRss:
    def test_flow_sticky(self):
        rss = RssHash(4)
        frame = udp_frame(dst_port=80, src_ip="10.1.2.3", src_port=5555)
        queue = rss(frame)
        for _ in range(5):
            assert rss(udp_frame(dst_port=80, src_ip="10.1.2.3",
                                 src_port=5555)) == queue

    def test_spreads_flows(self):
        rss = RssHash(4)
        queues = {
            rss(udp_frame(src_ip=f"10.0.{i // 256}.{i % 256}", src_port=i))
            for i in range(256)
        }
        assert queues == {0, 1, 2, 3}

    def test_roughly_uniform(self):
        rss = RssHash(2)
        counts = [0, 0]
        for i in range(2000):
            counts[rss(udp_frame(src_port=i, dst_port=i * 7 % 65536))] += 1
        assert 0.4 < counts[0] / 2000 < 0.6

    def test_non_ip_to_queue_zero(self):
        rss = RssHash(8)
        pkt = PacketData(60)
        pkt.arp_packet.fill()
        assert rss(SimFrame(pkt.bytes())) == 0

    def test_rejects_zero_queues(self):
        with pytest.raises(ConfigurationError):
            RssHash(0)

    def test_install_rss_end_to_end(self):
        env = MoonGenEnv(seed=2)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=4)
        env.connect(tx, rx)
        install_rss(rx)

        def sender(env, queue):
            import random
            rng = random.Random(7)
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60))
            bufs = mem.buf_array(32)
            for _ in range(8):
                bufs.alloc(60)
                for buf in bufs:
                    buf.udp_packet.ip.src = rng.randrange(1 << 32)
                    buf.udp_packet.udp.src_port = rng.randrange(65536)
                yield queue.send(bufs)

        env.launch(sender, env, tx.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=2_000_000)
        per_queue = [rx.get_rx_queue(i).rx_packets for i in range(4)]
        assert sum(per_queue) == 256
        assert all(count > 20 for count in per_queue)  # spread out
