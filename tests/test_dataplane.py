"""Tests for the in-dataplane latency observation layer.

Covers enablement and the zero-cost-when-off contract, the per-hop
metric names and what each histogram counts (tx-queue residence,
wire hop, end-to-end, DuT ring, rx inter-arrival), FCS gating (CRC-gap
fillers are pacing artifacts, never observed), fingerprint determinism,
snapshot/exporter integration, and the rate-control precision audit
(``repro.analysis.precision``) including its pure-Python CBR planner
against the numpy reference.
"""

import io

import pytest

from repro import MoonGenEnv, units
from repro._optional import np as _installed_np
from repro.analysis.precision import (
    METHODS,
    audit_registry,
    cbr_filler_schedule,
    format_audit_table,
    run_method,
    run_precision_audit,
    write_audit_csv,
)
from repro.core.ratecontrol import GapFiller
from repro.dut import OvsForwarder
from repro.errors import ConfigurationError


def _run_two_port(seed=5, duration_ns=400_000, dataplane=True, paced=None,
                  batch=False, scheduler=None):
    """One saturating (or paced) CBR pipeline port 0 -> port 1."""
    env = MoonGenEnv(seed=seed, metrics=True, dataplane=dataplane,
                     batch=batch, scheduler=scheduler)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)
    queue = tx.get_tx_queue(0)
    if paced:
        queue.set_rate_pps(paced, 64)

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
            pkt_length=60, eth_dst=str(rx.mac)))
        bufs = mem.buf_array(32)
        while env.running():
            bufs.alloc(60)
            yield queue.send(bufs)

    env.launch(slave, env, queue)
    env.wait_for_slaves(duration_ns=duration_ns)
    return env, tx, rx


class TestEnablement:
    def test_requires_metrics(self):
        with pytest.raises(ConfigurationError, match="metrics"):
            MoonGenEnv(seed=0, dataplane=True)

    def test_off_by_default_leaves_hooks_inert(self):
        env = MoonGenEnv(seed=0, metrics=True)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        wire, back = env.connect(tx, rx)
        assert env.dataplane is None
        assert tx.port.dataplane is None and rx.port.dataplane is None
        assert wire.dp_hop is None and wire.dp_e2e is None

    def test_disabled_run_has_no_histogram_metrics(self):
        env, _, _ = _run_two_port(dataplane=False)
        assert not any(n.startswith(("latency.", "interarrival."))
                       for n in env.metrics.names())

    def test_attachment_creates_stable_names(self):
        env = MoonGenEnv(seed=0, metrics=True, dataplane=True)
        tx = env.config_device(0, tx_queues=2)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        names = set(env.dataplane.histograms)
        assert {"latency.hop.nic0.txq0", "latency.hop.nic0.txq1",
                "interarrival.port0.rx", "interarrival.port1.rx",
                "latency.hop.wire.0->1", "latency.e2e.0->1",
                "latency.hop.wire.1->0", "latency.e2e.1->0"} <= names
        # The histograms live in the ordinary registry too.
        assert set(env.metrics.names()) >= names


class TestObservations:
    def test_counts_match_traffic(self):
        env, tx, rx = _run_two_port()
        dp = env.dataplane.read_all()
        # Every transmitted frame left through txq0 and crossed the wire.
        assert dp["latency.hop.nic0.txq0"]["total"] == tx.tx_packets
        assert dp["latency.hop.wire.0->1"]["total"] == rx.rx_packets
        assert dp["latency.e2e.0->1"]["total"] == rx.rx_packets
        # n arrivals produce n-1 gaps.
        assert dp["interarrival.port1.rx"]["total"] == rx.rx_packets - 1
        assert rx.rx_packets > 0
        # Nothing flowed the other way.
        assert dp["latency.hop.wire.1->0"]["total"] == 0
        assert dp["interarrival.port0.rx"]["total"] == 0

    def test_e2e_bounds_hop_residence(self):
        env, tx, rx = _run_two_port()
        dp = env.dataplane.read_all()
        # End-to-end includes the tx-queue wait, so its mean dominates
        # the wire hop's.
        wire = dp["latency.hop.wire.0->1"]
        e2e = dp["latency.e2e.0->1"]
        assert e2e["sum"] / e2e["total"] >= wire["sum"] / wire["total"]

    def test_saturated_interarrival_is_back_to_back(self):
        env, tx, rx = _run_two_port()
        p = env.dataplane.percentiles("interarrival.port1.rx", (50.0,))
        # A saturated 10 GbE link delivers 64 B frames every 67.2 ns.
        wire_ns = units.frame_time_ns(64, units.SPEED_10G)
        assert p["p50"] == pytest.approx(wire_ns, rel=0.5)

    def test_crc_fillers_are_not_observed(self):
        result = run_method("crc", rate_mpps=1.0, duration_ns=400_000,
                            seed=3)
        # The fillers really flowed (and were dropped as CRC errors)...
        assert result["rx_crc_errors"] > 0
        # ...but only FCS-valid arrivals enter the inter-arrival
        # histogram: n valid arrivals, n-1 gaps.
        assert result["histogram"]["total"] == result["rx_packets"] - 1

    def test_dut_ring_residence_observed(self):
        env = MoonGenEnv(seed=2, cost_noise=False, metrics=True,
                         dataplane=True)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        dut = OvsForwarder(env.loop)
        env.connect_to_sink(tx, dut.ingress)
        dut.connect_output(env.wire_to_device(rx))
        env.register_dut(dut)
        queue = tx.get_tx_queue(0)
        queue.set_rate_pps(1e6, 64)

        def slave(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60, eth_dst=str(rx.mac)))
            bufs = mem.buf_array(32)
            while env.running():
                bufs.alloc(60)
                yield queue.send(bufs)

        env.launch(slave, env, queue)
        env.wait_for_slaves(duration_ns=400_000)
        dp = env.dataplane.read_all()
        assert dp["latency.hop.dut.ring"]["total"] == dut.forwarded
        assert dut.forwarded > 0

    def test_percentiles_empty_histogram_yields_empty_dict(self):
        env = MoonGenEnv(seed=0, metrics=True, dataplane=True)
        env.config_device(0, tx_queues=1)
        assert env.dataplane.percentiles("interarrival.port0.rx") == {}


class TestDeterminism:
    def test_fingerprint_reproducible_and_seed_sensitive(self):
        a, _, _ = _run_two_port(seed=7)
        b, _, _ = _run_two_port(seed=7)
        c, _, _ = _run_two_port(seed=8)
        assert a.dataplane.fingerprint() == b.dataplane.fingerprint()
        assert a.dataplane.fingerprint() != c.dataplane.fingerprint()

    def test_snapshot_series_carries_histograms(self):
        env = MoonGenEnv(seed=5, metrics=True, dataplane=True)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        queue = tx.get_tx_queue(0)

        def slave(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60, eth_dst=str(rx.mac)))
            bufs = mem.buf_array(32)
            while env.running():
                bufs.alloc(60)
                yield queue.send(bufs)

        snap = env.start_snapshotter(interval_ns=200_000.0)
        env.launch(slave, env, queue)
        env.wait_for_slaves(duration_ns=400_000)
        snap.finalize()
        final = snap.series.final_values()
        assert final["latency.hop.wire.0->1"]["total"] == rx.rx_packets
        assert final["interarrival.port1.rx"]["total"] == rx.rx_packets - 1


class TestPrecisionAudit:
    def test_audit_table_and_methods(self):
        results = run_precision_audit(rate_mpps=1.0, duration_ns=400_000,
                                      seed=1)
        assert [r["method"] for r in results] == list(METHODS)
        table = format_audit_table(results)
        for method in METHODS:
            assert method in table
        # Hardware CBR and CRC-gap pacing both realise the target rate
        # precisely; naive bursty software pacing does not.
        hardware, crc, burst = results
        gap = hardware["target_gap_ns"]
        assert hardware["mean_ns"] == pytest.approx(gap, rel=0.02)
        assert crc["mean_ns"] == pytest.approx(gap, rel=0.02)
        p50 = burst["percentiles"]["p50"]
        assert p50 < gap / 2, "bursty pacing should show micro-bursts"

    def test_unknown_method_raises(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            run_method("tcpreplay")

    def test_csv_export_shape(self):
        results = run_precision_audit(rate_mpps=1.0, duration_ns=300_000,
                                      seed=1, methods=("hardware",))
        out = io.StringIO()
        write_audit_csv(results, out)
        lines = out.getvalue().strip().splitlines()
        assert lines[0] == "method,bucket_lo_ns,bucket_hi_ns,count,cumulative"
        assert all(line.startswith("hardware,") for line in lines[1:])
        # The last cumulative equals the histogram total.
        assert lines[-1].endswith(str(results[0]["histogram"]["total"]))

    def test_audit_registry_restores_exactly(self):
        results = run_precision_audit(rate_mpps=1.0, duration_ns=300_000,
                                      seed=1, methods=("hardware",))
        registry = audit_registry(results)
        hist = registry.get("precision.interarrival.hardware")
        assert hist.read() == results[0]["histogram"]

    @pytest.mark.skipif(_installed_np is None,
                        reason="the reference planner draws with numpy")
    def test_pure_python_cbr_planner_matches_numpy_plan(self):
        """The audit's carry-arithmetic CBR schedule must equal
        ``GapFiller.plan`` on the equivalent constant gap sequence."""
        filler = GapFiller()
        gap_ns = 1000.0
        schedule = cbr_filler_schedule(filler, gap_ns)
        reference = filler.plan([gap_ns] * 64)
        assert [next(schedule) for _ in range(64)] == \
            reference.filler_wire_bytes

    def test_planner_rejects_above_line_rate(self):
        with pytest.raises(ConfigurationError, match="line rate"):
            next(cbr_filler_schedule(GapFiller(), 1.0))
