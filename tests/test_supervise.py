"""Tests for ``repro.supervise``: journals, supervision, watchdogs.

The acceptance bar is the resilience contract of docs/RESILIENCE.md:

* a sweep killed at *any* point and resumed from its journal produces
  results — and a sealed journal — byte-identical to an uninterrupted
  run, for any ``jobs``;
* worker failures are classified (crashed / hung / slow), retried after
  deterministic backoff, and quarantined as poisoned points instead of
  aborting when the policy says so;
* a livelocked or wall-clock-runaway simulation aborts with
  :class:`SimAborted` plus a diagnostics snapshot instead of hanging.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro import MoonGenEnv
from repro.errors import (
    ConfigurationError,
    JournalCorruptError,
    PointFailedError,
    SimAborted,
)
from repro.parallel import point_key, run_parallel, seed_for
from repro.parallel.engine import _fork_context, _journal_keys
from repro.supervise import (
    DegradationReport,
    PoisonedPoint,
    PoisonedPointError,
    SupervisePolicy,
    SweepCancelledError,
    SweepJournal,
    Watchdog,
    backoff_delay_s,
    payload_fingerprint,
)
from tests._hypothesis_profiles import property_settings

SETTINGS = property_settings()
HEAVY = property_settings(8)

HAVE_FORK = _fork_context() is not None

# ---------------------------------------------------------------------------
# experiment functions (module-level so they pickle by reference)


def _mix(point, seed):
    """A deterministic JSON-friendly function of (point, seed)."""
    return {"point": point, "mix": (point * 2654435761 + seed) & 0xFFFFFFFF}


def _raise_for_two(point, seed):
    if point == 2:
        raise ValueError(f"deterministic failure for {point!r}")
    return _mix(point, seed)


def _always_crash(point, seed):
    os._exit(9)


def _sleep_forever(point, seed):
    time.sleep(60)


#: Marker directory for kill injection, exported to workers via env so
#: the points (and derived seeds) match the clean run exactly.
_KILL_DIR_ENV = "REPRO_SUPERVISE_KILL_DIR"
_MAIN_PID_ENV = "REPRO_SUPERVISE_MAIN_PID"


def _sigkill_once_then_mix(point, seed):
    """SIGKILLs its own worker on the first attempt per point.

    The marker file makes the second attempt (a fresh fork) survive, so
    with a retry budget the sweep completes — with the same results as a
    clean run, which is what the chaos property asserts.
    """
    marker_dir = os.environ[_KILL_DIR_ENV]
    in_worker = os.environ.get(_MAIN_PID_ENV) != str(os.getpid())
    marker = os.path.join(marker_dir, f"killed-{point_key(point)}")
    if in_worker and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return _mix(point, seed)


class _CoordinatorKilled(Exception):
    """Stand-in for the coordinator dying mid-sweep (raised from the
    progress hook, after the journal record for the point is fsync'd —
    exactly the state a SIGKILL'd coordinator leaves behind)."""


def _kill_coordinator_after(n):
    state = {"done": 0}

    def progress(done, total, result):
        state["done"] += 1
        if state["done"] >= n:
            raise _CoordinatorKilled(n)

    return progress


# ---------------------------------------------------------------------------
# journal format


class TestJournalFormat:
    def _clean_journal(self, path, n=3):
        journal = SweepJournal(str(path))
        journal.open(root_seed=5)
        for p in range(n):
            journal.record_point(point_key(p), seed_for(5, p),
                                 _mix(p, seed_for(5, p)))
        journal.close()
        return journal

    def test_header_is_first_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._clean_journal(path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"kind": "header", "schema": 1, "root_seed": 5}

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._clean_journal(path, n=3)
        reloaded = SweepJournal(str(path))
        reloaded.open(root_seed=5)
        assert len(reloaded) == 3
        record = reloaded.lookup(point_key(1))
        assert record["kind"] == "point"
        assert record["payload"] == _mix(1, seed_for(5, 1))
        assert record["fingerprint"] == payload_fingerprint(record["payload"])
        reloaded.close()

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._clean_journal(path, n=3)
        with open(path, "a") as fh:
            fh.write('{"kind":"point","key":"torn')  # crash mid-append
        reloaded = SweepJournal(str(path))
        reloaded.open(root_seed=5)
        assert reloaded.dropped_partial
        assert len(reloaded) == 3
        reloaded.close()
        # The rewrite must have removed the torn line: a third load sees
        # a fully valid file.
        again = SweepJournal(str(path))
        again.open(root_seed=5)
        assert not again.dropped_partial
        again.close()

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._clean_journal(path, n=3)
        lines = path.read_text().splitlines(keepends=True)
        lines[2] = "GARBAGE NOT JSON\n"
        path.write_text("".join(lines))
        with pytest.raises(JournalCorruptError, match="interior"):
            SweepJournal(str(path)).open(root_seed=5)

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._clean_journal(path, n=2)
        lines = path.read_text().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["payload"]["mix"] += 1  # silent bit-rot in the payload
        lines[1] = json.dumps(record, sort_keys=True,
                              separators=(",", ":")) + "\n"
        path.write_text("".join(lines))
        with pytest.raises(JournalCorruptError, match="fingerprint"):
            SweepJournal(str(path)).open(root_seed=5)

    def test_root_seed_mismatch_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._clean_journal(path)
        with pytest.raises(ConfigurationError, match="root seed"):
            SweepJournal(str(path)).open(root_seed=6)

    def test_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._clean_journal(path, n=1)
        with open(path, "a") as fh:
            fh.write('{"kind":"mystery","key":"k","seed":1}\n')
        with pytest.raises(JournalCorruptError, match="kind"):
            SweepJournal(str(path)).open(root_seed=5)

    def test_torn_header_only_file_restarts_fresh(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind":"head')  # killed during the very first write
        journal = SweepJournal(str(path))
        journal.open(root_seed=5)
        journal.close()
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "header"

    def test_seal_orders_records_canonically(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(str(path))
        journal.open(root_seed=0)
        keys = [point_key(p) for p in (1, 2, 3)]
        for key in reversed(keys):  # completion order != point order
            journal.record_point(key, 7, {"k": key})
        journal.seal(keys)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["key"] for r in lines[1:]] == keys

    def test_seal_refuses_missing_records(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "j.jsonl"))
        journal.open(root_seed=0)
        with pytest.raises(ConfigurationError, match="no\\s+record"):
            journal.seal([point_key(1)])

    def test_non_json_payload_raises(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "j.jsonl"))
        journal.open(root_seed=0)
        with pytest.raises(ConfigurationError, match="JSON"):
            journal.record_point("k", 1, object())

    def test_poison_record_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(str(path))
        journal.open(root_seed=0)
        journal.record_poisoned("k", 1, "ValueError: boom", attempts=2)
        journal.close()
        reloaded = SweepJournal(str(path))
        reloaded.open(root_seed=0)
        record = reloaded.lookup("k")
        assert record["kind"] == "poisoned"
        assert record["error"] == "ValueError: boom"
        assert record["attempts"] == 2


class TestJournalKeys:
    def test_unique_points_use_plain_keys(self):
        assert _journal_keys([1, 2, 3]) == ["int:1", "int:2", "int:3"]

    def test_duplicates_get_occurrence_suffixes(self):
        assert _journal_keys([5, 5, 5]) == ["int:5", "int:5#1", "int:5#2"]


# ---------------------------------------------------------------------------
# backoff policy


class TestBackoff:
    def test_deterministic(self):
        assert backoff_delay_s(123, 2) == backoff_delay_s(123, 2)

    def test_jitter_within_half_to_full_envelope(self):
        for attempt in range(1, 8):
            base = min(2.0, 0.05 * 2.0 ** (attempt - 1))
            delay = backoff_delay_s(99, attempt)
            assert 0.5 * base <= delay <= base

    def test_capped_at_max(self):
        assert backoff_delay_s(1, 50, max_s=0.25) <= 0.25

    def test_varies_with_attempt_and_seed(self):
        delays = {backoff_delay_s(s, a) for s in (1, 2) for a in (1, 2)}
        assert len(delays) == 4

    def test_policy_wires_knobs(self):
        policy = SupervisePolicy(backoff_base_s=0.1, backoff_factor=3.0,
                                 backoff_max_s=0.4)
        assert policy.backoff_s(7, 4) <= 0.4
        assert policy.backoff_s(7, 1) <= 0.1


# ---------------------------------------------------------------------------
# journaled sweeps: clean, killed, resumed


class TestJournaledSweeps:
    POINTS = [1, 2, 3, 4, 5, 6]

    def _clean(self, tmp_path, jobs, name="clean.jsonl"):
        path = str(tmp_path / name)
        report = DegradationReport()
        results = run_parallel(self.POINTS, _mix, jobs=jobs, root_seed=3,
                               journal=SweepJournal(path), report=report)
        with open(path, "rb") as fh:
            return results, fh.read(), report

    def test_serial_and_pooled_journals_byte_identical(self, tmp_path):
        results_1, bytes_1, _ = self._clean(tmp_path, jobs=1, name="a.jsonl")
        if not HAVE_FORK:
            pytest.skip("no fork start method")
        results_2, bytes_2, _ = self._clean(tmp_path, jobs=3, name="b.jsonl")
        assert results_1 == results_2
        assert bytes_1 == bytes_2

    def test_results_are_json_canonical(self, tmp_path):
        results, _, _ = self._clean(tmp_path, jobs=1)
        assert results == [json.loads(json.dumps(_mix(p, seed_for(3, p))))
                           for p in self.POINTS]

    def test_full_journal_resume_runs_nothing(self, tmp_path):
        results, sealed, _ = self._clean(tmp_path, jobs=1)
        path = str(tmp_path / "clean.jsonl")
        report = DegradationReport()
        again = run_parallel(self.POINTS, _always_crash, jobs=1, root_seed=3,
                            journal=SweepJournal(path), report=report)
        # _always_crash never ran: every point came from the journal.
        assert again == results
        assert report.resumed == len(self.POINTS)
        assert report.completed == 0
        with open(path, "rb") as fh:
            assert fh.read() == sealed

    @pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")
    @given(prefix=st.integers(min_value=1, max_value=5),
           jobs=st.sampled_from([1, 2, 4]))
    @settings(**HEAVY)
    def test_killed_coordinator_resumes_bit_identical(self, tmp_path_factory,
                                                      prefix, jobs):
        """Kill the coordinator after a random prefix of completions (and
        SIGKILL every worker's first attempt): results and the sealed
        journal must match an uninterrupted run byte for byte."""
        tmp_path = tmp_path_factory.mktemp("chaos")
        reference, sealed, _ = self._clean(tmp_path, jobs=1)
        path = str(tmp_path / "chaos.jsonl")
        kill_dir = str(tmp_path / "markers")
        os.makedirs(kill_dir, exist_ok=True)
        os.environ[_KILL_DIR_ENV] = kill_dir
        os.environ[_MAIN_PID_ENV] = str(os.getpid())
        try:
            with pytest.raises(_CoordinatorKilled):
                run_parallel(self.POINTS, _sigkill_once_then_mix, jobs=jobs,
                             root_seed=3, retries=1, timeout_s=30.0,
                             journal=SweepJournal(path),
                             supervise=SupervisePolicy(backoff_base_s=0.001,
                                                       backoff_max_s=0.01),
                             progress=_kill_coordinator_after(prefix))
            report = DegradationReport()
            resumed = run_parallel(self.POINTS, _sigkill_once_then_mix,
                                   jobs=jobs, root_seed=3, retries=1,
                                   timeout_s=30.0,
                                   journal=SweepJournal(path),
                                   supervise=SupervisePolicy(
                                       backoff_base_s=0.001,
                                       backoff_max_s=0.01),
                                   report=report)
        finally:
            os.environ.pop(_KILL_DIR_ENV, None)
            os.environ.pop(_MAIN_PID_ENV, None)
        assert resumed == reference
        assert report.resumed >= prefix
        with open(path, "rb") as fh:
            assert fh.read() == sealed

    def test_duplicate_points_each_journaled(self, tmp_path):
        path = str(tmp_path / "dup.jsonl")
        results = run_parallel([5, 5, 5], _mix, jobs=1, root_seed=0,
                               journal=SweepJournal(path))
        assert results[0] == results[1] == results[2]
        lines = [json.loads(l) for l in open(path).read().splitlines()]
        assert [r["key"] for r in lines[1:]] == ["int:5", "int:5#1",
                                                 "int:5#2"]
        # Resume skips all three occurrences.
        report = DegradationReport()
        again = run_parallel([5, 5, 5], _always_crash, jobs=1, root_seed=0,
                             journal=SweepJournal(path), report=report)
        assert again == results and report.resumed == 3

    def test_journal_for_different_sweep_is_rejected(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        run_parallel([1, 2], _mix, jobs=1, root_seed=3,
                     journal=SweepJournal(path))
        with pytest.raises(ConfigurationError, match="root seed"):
            run_parallel([1, 2], _mix, jobs=1, root_seed=4,
                         journal=SweepJournal(path))


# ---------------------------------------------------------------------------
# quarantine and degradation reports


class TestQuarantine:
    def test_fn_error_poisons_immediately_serial(self):
        report = DegradationReport()
        results = run_parallel([1, 2, 3], _raise_for_two, jobs=1, root_seed=0,
                               supervise=SupervisePolicy(quarantine=True),
                               report=report)
        assert results[0] == _mix(1, seed_for(0, 1))
        assert isinstance(results[1], PoisonedPoint)
        assert results[1].error == "ValueError: deterministic failure for 2"
        assert report.degraded and len(report.poisoned) == 1
        assert report.completed == 2

    @pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")
    def test_pool_and_serial_poison_identically(self):
        def run(jobs):
            report = DegradationReport()
            results = run_parallel([1, 2, 3], _raise_for_two, jobs=jobs,
                                   root_seed=0,
                                   supervise=SupervisePolicy(quarantine=True),
                                   report=report)
            return results, report
        serial, _ = run(1)
        pooled, report = run(2)
        assert serial[1].error == pooled[1].error
        assert serial[1].key == pooled[1].key
        assert [r for i, r in enumerate(serial) if i != 1] == \
               [r for i, r in enumerate(pooled) if i != 1]

    def test_without_quarantine_fn_error_still_raises(self):
        with pytest.raises(PointFailedError):
            run_parallel([1, 2, 3], _raise_for_two, jobs=1, root_seed=0,
                         supervise=SupervisePolicy(quarantine=False))

    @pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")
    def test_crash_poisons_after_retry_budget(self):
        report = DegradationReport()
        results = run_parallel([1, 2], _always_crash, jobs=2, root_seed=0,
                               retries=1,
                               supervise=SupervisePolicy(
                                   quarantine=True, backoff_base_s=0.001,
                                   backoff_max_s=0.01),
                               report=report)
        assert all(isinstance(r, PoisonedPoint) for r in results)
        assert all(p.attempts == 2 for p in results)
        assert report.crashed == 4  # 2 points x 2 attempts
        assert report.retried == 2

    def test_poisoned_point_raises_on_demand(self):
        poisoned = PoisonedPoint(key="int:1", seed=7, error="boom",
                                 attempts=3)
        with pytest.raises(PoisonedPointError, match="3 attempt"):
            poisoned.raise_()

    def test_poisoned_resume_is_not_rerun(self, tmp_path):
        path = str(tmp_path / "p.jsonl")
        report = DegradationReport()
        run_parallel([1, 2, 3], _raise_for_two, jobs=1, root_seed=0,
                     journal=SweepJournal(path),
                     supervise=SupervisePolicy(quarantine=True),
                     report=report)
        report_2 = DegradationReport()
        results = run_parallel([1, 2, 3], _mix, jobs=1, root_seed=0,
                               journal=SweepJournal(path),
                               supervise=SupervisePolicy(quarantine=True),
                               report=report_2)
        # The poison record is honored, not retried — _mix would have
        # succeeded, but the journal says this point is quarantined.
        assert isinstance(results[1], PoisonedPoint)
        assert report_2.resumed == 3 and report_2.degraded

    def test_report_metrics_registration(self):
        from repro.metrics import MetricsRegistry

        report = DegradationReport(completed=3, resumed=2, retried=1,
                                   crashed=1, hung=0, slow=1)
        report.poisoned.append(PoisonedPoint("k", 1, "e", 2))
        registry = MetricsRegistry()
        report.register_metrics(registry)
        values = registry.read_all()
        assert values["supervise.points.completed"] == 3
        assert values["supervise.points.resumed"] == 2
        assert values["supervise.workers.crashed"] == 1
        assert values["supervise.points.poisoned"] == 1

    def test_report_summary_and_table(self):
        report = DegradationReport(completed=4, retried=1)
        report.poisoned.append(PoisonedPoint("int:2", 1, "boom", 2))
        assert "completed=4" in report.summary()
        assert "poisoned=1" in report.summary()
        assert "int:2" in report.format_table()


# ---------------------------------------------------------------------------
# heartbeat classification


@pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")
class TestHeartbeats:
    def test_slow_worker_with_live_heartbeats(self):
        report = DegradationReport()
        results = run_parallel([1, 2], _sleep_forever, jobs=2, root_seed=0,
                               timeout_s=0.6, retries=0,
                               supervise=SupervisePolicy(
                                   heartbeat_interval_s=0.05,
                                   hung_after_s=10.0, quarantine=True),
                               report=report)
        # time.sleep releases the GIL, so the heartbeat thread keeps
        # ticking: the deadline expiry is classified *slow*, not hung.
        assert report.slow == 2 and report.hung == 0
        assert all(isinstance(r, PoisonedPoint) for r in results)
        assert all("slow" in p.error for p in results)

    def test_silent_worker_is_hung(self):
        report = DegradationReport()
        results = run_parallel([1, 2], _sleep_forever, jobs=2, root_seed=0,
                               timeout_s=0.6, retries=0,
                               supervise=SupervisePolicy(
                                   heartbeat_interval_s=30.0,
                                   hung_after_s=0.2, quarantine=True),
                               report=report)
        # With a 30 s tick interval no beat ever arrives inside the
        # 0.6 s deadline: silent past hung_after_s means *hung*.
        assert report.hung == 2 and report.slow == 0
        assert all("hung" in p.error for p in results)


# ---------------------------------------------------------------------------
# simulation watchdogs


class TestWatchdog:
    def test_livelock_aborts_with_diagnostics(self):
        env = MoonGenEnv(seed=1, metrics=True,
                         watchdog=Watchdog(max_zero_advance=300))

        def spinner(env):
            while True:
                yield None  # same-instant reschedule: clock never moves

        env.launch(spinner, env)
        with pytest.raises(SimAborted, match="livelock") as exc:
            env.wait_for_slaves(duration_ns=1e6)
        diagnostics = exc.value.diagnostics
        assert diagnostics["zero_advance"] >= 300
        assert diagnostics["now_ps"] == 0
        assert diagnostics["pending_events"] + diagnostics["lane_live"] >= 1
        assert diagnostics["top_owners"]  # the spinner shows up by name
        assert isinstance(diagnostics["metrics"], dict)

    def test_wall_deadline_aborts(self):
        env = MoonGenEnv(seed=1, watchdog=Watchdog(wall_deadline_s=0.05,
                                                   check_every=256))

        def busy(env):
            while env.running():
                yield env.sleep_us(0.001)

        env.launch(busy, env)
        with pytest.raises(SimAborted, match="wall-clock deadline"):
            env.wait_for_slaves(duration_ns=1e12)

    def test_healthy_run_is_bit_identical_under_watchdog(self):
        def run(watchdog):
            env = MoonGenEnv(seed=3, watchdog=watchdog)
            tx = env.config_device(0, tx_queues=1)
            rx = env.config_device(1, rx_queues=1)
            env.connect(tx, rx)

            def slave(env, queue):
                mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                    pkt_length=60, eth_dst=str(rx.mac)))
                bufs = mem.buf_array()
                while env.running():
                    bufs.alloc(60)
                    yield queue.send(bufs)

            env.launch(slave, env, tx.get_tx_queue(0))
            env.wait_for_slaves(duration_ns=200_000.0)
            return tx.tx_packets, env.loop.events_processed

        guarded = run(Watchdog(wall_deadline_s=60.0, max_zero_advance=100_000))
        plain = run(None)
        assert guarded == plain

    def test_advancing_events_reset_livelock_counter(self):
        # Thousands of events, every one advancing the clock: a small
        # zero-advance budget must never fire.
        env = MoonGenEnv(seed=1, watchdog=Watchdog(max_zero_advance=16))

        def stepper(env):
            while env.running():
                yield env.sleep_us(0.01)

        env.launch(stepper, env)
        env.wait_for_slaves(duration_ns=500_000.0)
        assert env.loop.events_processed > 64

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            Watchdog(wall_deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            Watchdog(max_zero_advance=0)
        with pytest.raises(ConfigurationError):
            Watchdog(check_every=0)


# ---------------------------------------------------------------------------
# clean cancellation (subprocess: signals must hit a real coordinator)


@pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")
class TestCancellation:
    def _spawn_sweep(self, tmp_path, journal_name="cancel.jsonl"):
        path = str(tmp_path / journal_name)
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "sweep", "fig2-cores",
             "--jobs", "2", "--journal", path],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            try:
                if sum(1 for l in open(path) if l.strip()) >= 2:
                    break  # header + at least one fsync'd point
            except FileNotFoundError:
                pass
            if proc.poll() is not None:
                raise AssertionError(
                    f"sweep exited early: {proc.communicate()}")
            time.sleep(0.02)
        return proc, path

    def _assert_cancelled(self, proc, signum, expect_code):
        proc.send_signal(signum)
        _, stderr = proc.communicate(timeout=30)
        assert proc.returncode == expect_code, stderr
        assert "cancelled" in stderr
        assert "journal flushed" in stderr

    def test_sigint_exits_130_and_flushes_journal(self, tmp_path):
        proc, path = self._spawn_sweep(tmp_path)
        self._assert_cancelled(proc, signal.SIGINT, 130)
        # The journal on disk is valid and resumable.
        journal = SweepJournal(path)
        journal.open(root_seed=0)
        assert len(journal) >= 1
        journal.close()

    def test_sigterm_exits_143(self, tmp_path):
        proc, _ = self._spawn_sweep(tmp_path, "term.jsonl")
        self._assert_cancelled(proc, signal.SIGTERM, 143)

    def test_cancelled_error_carries_exit_code(self):
        exc = SweepCancelledError(signal.SIGINT)
        assert exc.exit_code == 130
        assert "SIGINT" in str(exc)
