"""Documentation fidelity: the README's code examples actually run."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


class TestReadme:
    def test_readme_exists_with_sections(self):
        text = README.read_text()
        for heading in ("## Install", "## Quick start", "## What's inside",
                        "## Examples", "## Tests and benchmarks"):
            assert heading in text

    def test_has_python_examples(self):
        assert len(python_blocks()) >= 1

    def test_quickstart_block_runs_at_line_rate(self):
        """Execute the README quick-start verbatim and check its claim."""
        block = python_blocks()[0]
        namespace = {}
        exec(compile(block, "README.md", "exec"), namespace)  # noqa: S102
        tx_dev = namespace["tx_dev"]
        env = namespace["env"]
        pps = tx_dev.tx_packets / (env.now_ns / 1e9)
        assert pps == pytest.approx(14.88e6, rel=0.02)

    def test_referenced_files_exist(self):
        root = README.parent
        text = README.read_text()
        for link in re.findall(r"\]\(([\w./-]+)\)", text):
            if link.startswith("http"):
                continue
            assert (root / link).exists(), f"README links to missing {link}"

    def test_example_commands_point_at_real_files(self):
        root = README.parent
        text = README.read_text()
        for path in re.findall(r"python (examples/[\w_]+\.py)", text):
            assert (root / path).exists(), path
