"""Tests for the deterministic fault-injection subsystem (``repro.faults``).

Covers the plan layer (validation, JSON round-trips), the Gilbert–Elliott
model's draw discipline, the wire's pinned RNG draw order under faults
(the ``Link._corrupt`` regression), every fault kind end-to-end through
the canonical chaos scenario, and the graceful-degradation behavior of
the measurement components (seqcheck, timestamping, monitor, rfc2544).
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_KINDS,
    BurstLoss,
    ClockDrift,
    ClockStep,
    CorruptionBurst,
    DmaSlowdown,
    DutOverload,
    FaultInjector,
    FaultPlan,
    GilbertElliott,
    LinkFlap,
    QueueStall,
    RingFreeze,
    builtin_plans,
    load_plan,
)
from repro.faults.runner import run_plan
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import COPPER_CAT5E, Cable, Wire
from repro.nicsim.nic import SimFrame
from repro import units


def conservation_ok(result):
    """Every offered frame is accounted for exactly once at the wire.

    ``rx_missed`` is *not* a separate term: the port counts a frame in
    ``rx_packets`` before the ring can refuse it.
    """
    return result["wire_sent"] == (result["rx_packets"]
                                   + result["rx_crc_errors"]
                                   + result["wire_dropped"]
                                   + result["wire_in_flight"])


class TestFaultPlan:
    def test_builtin_plans_round_trip_through_json(self):
        for name, plan in builtin_plans(seed=9).items():
            assert load_plan(plan.to_json()) == plan, name

    def test_load_plan_accepts_dict_and_path(self, tmp_path):
        plan = builtin_plans(seed=2)["burst-loss"]
        assert load_plan(plan.to_dict()) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert load_plan(str(path)) == plan
        assert load_plan(plan) is plan

    def test_load_plan_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="not JSON"):
            load_plan("{broken")
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_plan("/nonexistent/plan.json")
        with pytest.raises(ConfigurationError, match="cannot build"):
            load_plan(42)

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultPlan.from_dict(
                {"version": 1, "faults": [{"fault": "gamma_ray"}]})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fields"):
            FaultPlan.from_dict({"version": 1, "faults": [
                {"fault": "link_flap", "target": "port:1",
                 "start_ns": 0, "end_ns": 1, "banana": True}]})

    def test_future_version_rejected(self):
        with pytest.raises(ConfigurationError, match="version"):
            FaultPlan.from_dict({"version": 99, "faults": []})

    def test_window_validation(self):
        with pytest.raises(ConfigurationError, match="end_ns before"):
            FaultPlan(faults=(
                LinkFlap("port:1", start_ns=5.0, end_ns=1.0),))
        with pytest.raises(ConfigurationError, match="negative start"):
            FaultPlan(faults=(
                CorruptionBurst("wire:0->1", start_ns=-1.0, end_ns=1.0),))

    def test_probability_validation(self):
        with pytest.raises(ConfigurationError, match="p_good_bad"):
            BurstLoss("wire:0->1", 0.0, 1.0, p_good_bad=1.5).validate()
        with pytest.raises(ConfigurationError, match="rate"):
            CorruptionBurst("wire:0->1", 0.0, 1.0, rate=-0.1).validate()

    def test_target_validation(self):
        with pytest.raises(ConfigurationError, match="targets ports"):
            LinkFlap("wire:0->1", 0.0, 1.0).validate()
        with pytest.raises(ConfigurationError, match="targets 'dut'"):
            DutOverload("port:0", 0.0, 1.0).validate()
        with pytest.raises(ConfigurationError, match="factor"):
            DmaSlowdown("port:0", 0.0, 1.0, factor=0.5).validate()

    def test_non_fault_rejected(self):
        with pytest.raises(ConfigurationError, match="not a fault"):
            FaultPlan(faults=("oops",))

    def test_targets_in_first_seen_order(self):
        plan = builtin_plans()["nic-chaos"]
        assert plan.targets() == ("port:0", "port:1")
        assert len(plan) == 3

    def test_catalog_is_complete(self):
        assert set(FAULT_KINDS) == {
            "burst_loss", "corruption", "link_flap", "queue_stall",
            "dma_slowdown", "ring_freeze", "clock_step", "clock_drift",
            "dut_overload",
        }


class TestGilbertElliott:
    def test_two_draws_per_frame_regardless_of_outcome(self):
        """The stream position is a pure function of frames offered."""
        model = GilbertElliott(7, p_good_bad=0.3, p_bad_good=0.3,
                               loss_good=0.1, loss_bad=0.9)
        for _ in range(500):
            model(64)
        reference = random.Random(7)
        for _ in range(2 * 500):
            reference.random()
        assert model.rng.random() == reference.random()

    def test_losses_are_bursty(self):
        model = GilbertElliott(3, p_good_bad=0.05, p_bad_good=0.25,
                               loss_good=0.0, loss_bad=1.0)
        outcomes = [model(64) for _ in range(5000)]
        assert model.offered == 5000
        assert model.lost == sum(outcomes)
        assert 0.0 < model.loss_fraction() < 1.0
        # With loss_bad=1 every burst is a run of consecutive losses; the
        # number of loss runs can't exceed the counted bursts (a burst
        # entered right before the window closes adds no losses).
        runs = sum(1 for prev, cur in zip([False] + outcomes, outcomes)
                   if cur and not prev)
        assert runs <= model.bursts

    def test_deterministic_replay(self):
        a = GilbertElliott(11)
        b = GilbertElliott(11)
        assert [a(64) for _ in range(1000)] == [b(64) for _ in range(1000)]


def _wire_run(loss_model=None, n=40):
    """Transmit ``n`` frames over a jittery, corrupting wire; returns the
    delivered ``(index, arrival_ps, fcs_ok)`` tuples and the wire."""
    loop = EventLoop()
    wire = Wire(loop, units.SPEED_10G, Cable(COPPER_CAT5E, 2.0),
                seed=7, corrupt_rate=0.2)
    wire.loss_model = loss_model
    got = []
    wire.connect(lambda f, t: got.append((f.meta["i"], t, f.fcs_ok)))
    for i in range(n):
        frame = SimFrame(bytes(60))
        frame.meta["i"] = i
        wire.transmit(frame, 64)
    loop.run()
    return got, wire


class TestWireDrawOrder:
    """The ``Link._corrupt`` regression: the per-frame draw order (jitter
    then corruption, loss model on its own stream in between) is pinned."""

    # seed=7, corrupt_rate=0.2, COPPER_CAT5E 2 m — computed once from the
    # pinned draw order; any reordering of the wire's RNG draws moves them.
    EXPECTED_CORRUPTED = [0, 1, 5, 10, 12, 16, 25]
    EXPECTED_FIRST_ARRIVALS = [2224069, 2284869, 2358469, 2425669, 2492869]

    def test_corrupted_indices_and_arrivals_are_pinned(self):
        got, wire = _wire_run()
        assert [i for i, _, ok in got if not ok] == self.EXPECTED_CORRUPTED
        assert [t for _, t, _ in got[:5]] == self.EXPECTED_FIRST_ARRIVALS
        assert wire.corrupted == len(self.EXPECTED_CORRUPTED)

    def test_inert_loss_model_does_not_shift_wire_draws(self):
        baseline, _ = _wire_run()
        with_model, _ = _wire_run(loss_model=lambda size: False)
        ge = GilbertElliott(5, p_good_bad=0.0, loss_good=0.0, loss_bad=0.0)
        with_ge, _ = _wire_run(loss_model=ge)
        assert with_model == baseline
        assert with_ge == baseline

    def test_lost_frames_skip_the_corruption_draw(self):
        got, wire = _wire_run(loss_model=lambda size: True)
        assert got == []
        assert wire.dropped == 40
        assert wire.corrupted == 0  # dropped and corrupted stay disjoint
        # The corruption draw of a lost frame is not consumed: only jitter
        # advanced the wire's stream, one draw per frame.
        reference = random.Random(7)
        for _ in range(40):
            COPPER_CAT5E.jitter_ns(reference)
        assert wire.rng.random() == reference.random()

    def test_carrier_down_consumes_no_draws(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G, Cable(COPPER_CAT5E, 2.0),
                    seed=7, corrupt_rate=0.2)
        wire.connect(lambda f, t: None)
        wire.carrier_up = False
        for _ in range(25):
            wire.transmit(SimFrame(bytes(60)), 64)
        loop.run()
        assert wire.dropped == 25
        assert wire.rng.random() == random.Random(7).random()

    def test_wire_level_conservation(self):
        ge = GilbertElliott(2, p_good_bad=0.2, p_bad_good=0.2, loss_bad=0.9)
        got, wire = _wire_run(loss_model=ge, n=300)
        assert len(got) + wire.dropped == wire.frames_sent == 300

    def test_faulted_wire_refuses_fast_forward(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G)
        wire.connect(lambda f, t: None)
        assert wire.can_fast_forward()
        wire.faulted = True
        assert not wire.can_fast_forward()
        wire.faulted = False
        wire.carrier_up = False
        assert not wire.can_fast_forward()
        wire.carrier_up = True
        wire.loss_model = lambda size: False
        assert not wire.can_fast_forward()


def _chaos(faults, plan_seed=0, duration_ns=3e6, **kwargs):
    plan = FaultPlan(faults=faults, seed=plan_seed)
    return run_plan(plan, duration_ns=duration_ns, **kwargs)


class TestFaultInjection:
    """Each fault kind, end-to-end through the canonical chaos scenario."""

    def test_no_faults_baseline_is_clean(self):
        result = _chaos(())
        assert result["wire_dropped"] == 0
        assert result["rx_crc_errors"] == 0
        assert result["rx_link_changes"] == 0
        assert result["faults_injected"] == 0
        assert conservation_ok(result)

    def test_burst_loss(self):
        result = _chaos((BurstLoss("wire:0->1", 0.5e6, 2.5e6,
                                   p_good_bad=0.05, loss_bad=0.9),))
        assert result["wire_dropped"] > 0
        assert result["seq_lost"] > 0
        assert result["seq_gap_events"] > 0
        assert 0.0 < result["loss_fraction"] < 1.0
        assert conservation_ok(result)

    def test_corruption_burst(self):
        result = _chaos((CorruptionBurst("wire:0->1", 1e6, 2e6, rate=0.3),))
        assert result["wire_corrupted"] > 0
        assert result["rx_crc_errors"] == result["wire_corrupted"]
        assert result["wire_dropped"] == 0
        assert conservation_ok(result)

    def test_link_flap(self):
        result = _chaos((LinkFlap("port:1", 1e6, 2e6),))
        assert result["rx_link_changes"] == 2
        assert result["wire_dropped"] > 0
        assert result["monitor_gaps"] >= 1
        assert conservation_ok(result)

    def test_queue_stall_backpressures_then_recovers(self):
        stalled = _chaos((QueueStall("port:0", 0.5e6, 1.5e6, queue=0),))
        clean = _chaos(())
        assert stalled["tx_packets"] < clean["tx_packets"]
        assert stalled["rx_packets"] > 0  # traffic resumed after the window
        assert conservation_ok(stalled)

    def test_dma_slowdown_reduces_throughput(self):
        # 64 B MAC occupancy is ~67 ns; ×16 ≈ 0.93 Mpps — below the
        # scenario's 1.5 Mpps offered load, so the stretch must bite.
        slowed = _chaos((DmaSlowdown("port:0", 0.5e6, 2.5e6, factor=16.0),))
        clean = _chaos(())
        assert slowed["tx_packets"] < clean["tx_packets"]
        assert conservation_ok(slowed)

    def test_ring_freeze_overflows_into_rx_missed(self):
        result = _chaos((RingFreeze("port:1", 1e6, 2e6, queue=0),))
        assert result["rx_missed"] > 0
        assert conservation_ok(result)

    def test_clock_step_moves_the_rx_clock(self):
        stepped = _chaos((ClockStep("port:1", at_ns=1e6, step_ns=500.0),))
        clean = _chaos(())
        # The PTP clock quantizes to its tick grid, so the observed step
        # lands within one 6.4 ns tick of the requested one.
        assert stepped["rx_clock_ns"] - clean["rx_clock_ns"] == \
            pytest.approx(500.0, abs=6.4)

    def test_clock_drift_changes_the_slope(self):
        drifted = _chaos((ClockDrift("port:1", at_ns=1e6, drift_ppm=100.0),))
        clean = _chaos(())
        # 100 ppm from t=1 ms until the last event (a bit past the 3 ms
        # horizon while in-flight work drains): a few hundred ns ahead.
        diff = drifted["rx_clock_ns"] - clean["rx_clock_ns"]
        assert 150.0 <= diff <= 350.0

    def test_dut_overload_drops_at_the_dut(self):
        # The overload window must outlast what the DuT's 4096-deep rx
        # ring can absorb at the saturated service rate.
        overloaded = _chaos((DutOverload("dut", 0.5e6, 6e6, factor=16.0),),
                            duration_ns=6.5e6)
        clean = _chaos((DutOverload("dut", 0.5e6, 6e6, factor=1.0),),
                       duration_ns=6.5e6)
        assert overloaded["dut_rx_dropped"] > clean["dut_rx_dropped"]
        assert overloaded["rx_packets"] < clean["rx_packets"]

    def test_fault_trace_records_are_emitted(self):
        from repro.trace import Tracer

        tracer = Tracer(categories=("fault",))
        _chaos((BurstLoss("wire:0->1", 0.5e6, 1.5e6),
                LinkFlap("port:1", 2e6, 2.5e6)), trace=tracer)
        kinds = [r.kind for r in tracer.records()]
        assert kinds == ["burst_loss_start", "burst_loss_end",
                         "link_down", "link_up"]

    def test_unmatched_targets_are_reported(self):
        plan = FaultPlan(faults=(
            CorruptionBurst("wire:5->9", 0.0, 1.0),))
        injector = FaultInjector(EventLoop(), plan)
        assert injector.unmatched() == [(0, "wire:5->9")]

    def test_queue_index_out_of_range_raises(self):
        with pytest.raises(ConfigurationError, match="no tx queue"):
            _chaos((QueueStall("port:1", 0.0, 1.0, queue=7),))

    def test_builtin_plans_all_run_and_conserve(self):
        for name, plan in builtin_plans(seed=4).items():
            result = run_plan(plan, duration_ns=6.5e6)
            assert result["faults_injected"] > 0, name
            assert conservation_ok(result), name


class TestDeterminism:
    def test_same_plan_same_seed_same_fingerprint(self):
        plan = builtin_plans(seed=5)["burst-loss"]
        a = run_plan(plan, seed=3, duration_ns=3e6)
        b = run_plan(plan, seed=3, duration_ns=3e6)
        assert a == b

    def test_plan_seed_changes_the_loss_pattern(self):
        a = run_plan(builtin_plans(seed=1)["burst-loss"], duration_ns=4e6)
        b = run_plan(builtin_plans(seed=2)["burst-loss"], duration_ns=4e6)
        assert a["fingerprint"] != b["fingerprint"]

    def test_fault_index_separates_identical_faults(self):
        """Two identical faults on one target must not share a stream."""
        flap = BurstLoss("wire:0->1", 0.2e6, 1.2e6, p_good_bad=0.1)
        again = BurstLoss("wire:0->1", 1.8e6, 2.8e6, p_good_bad=0.1)
        from repro.parallel.seeding import seed_for

        assert seed_for(0, (0, flap)) != seed_for(0, (1, again))

    def test_serial_matches_parallel_matrix(self):
        from repro.faults.runner import run_matrix

        names = ["flap", "clock-step"]
        serial = run_matrix(names, seed=2, jobs=1)
        sharded = run_matrix(names, seed=2, jobs=2)
        assert serial == sharded


class _SeqBuf:
    """Minimal stand-in for a received packet buffer."""

    class _Pkt:
        def __init__(self, data):
            self.data = data

    def __init__(self, seq):
        self.pkt = self._Pkt(seq.to_bytes(4, "big"))


class TestGracefulDegradation:
    def test_seqcheck_classifies_gap_shape(self):
        from repro.core.seqcheck import SequenceTracker

        tracker = SequenceTracker(offset=0)
        for seq in [0, 1, 5, 6, 10, 11]:  # two bursts: 2-4 and 7-9
            tracker.observe(_SeqBuf(seq))
        report = tracker.report
        assert report.lost == 6
        assert report.gap_events == 2
        assert report.longest_gap == 3
        assert 0.0 <= report.loss_fraction <= 1.0

    def test_seqcheck_loss_fraction_clamped_under_stragglers(self):
        from repro.core.seqcheck import SequenceReport

        assert SequenceReport(received=10, lost=0).loss_fraction == 0.0
        assert SequenceReport(received=0, lost=5).loss_fraction == 1.0
        # Straggler re-classification decrements ``lost``; the clamp keeps
        # the fraction a fraction even if accounting transiently overshoots.
        assert SequenceReport(received=10, lost=-3).loss_fraction == 0.0

    def test_timestamper_confidence(self):
        from repro.core.timestamping import Timestamper

        ts = Timestamper.__new__(Timestamper)
        ts.attempted = 0
        ts.lost_probes = 0
        assert ts.confidence == 1.0  # vacuous: no probes attempted
        ts.attempted = 10
        ts.lost_probes = 3
        assert ts.confidence == pytest.approx(0.7)
        ts.lost_probes = 99
        assert ts.confidence == 0.0

    def test_monitor_annotates_flap_gaps(self):
        result = _chaos((LinkFlap("port:1", 1e6, 2e6),))
        assert result["monitor_gaps"] >= 1
        assert result["monitor_samples"] > 0  # it kept sampling throughout

    def test_rfc2544_converges_with_loss_tolerance(self):
        from repro.analysis.rfc2544 import throughput_test

        # A DuT that forwards cleanly below 1 Mpps, over a channel with
        # 5 % intrinsic loss: the strict criterion fails at every rate.
        def probe(pps):
            return 0.05 + (0.3 if pps > 1e6 else 0.0)

        strict = throughput_test(probe, 2e6, min_rate_pps=1e4)
        assert strict.throughput_pps <= 1e4 * 1.5  # degenerated to the floor
        budgeted = throughput_test(probe, 2e6, min_rate_pps=1e4,
                                   loss_tolerance=0.1)
        assert budgeted.throughput_pps == pytest.approx(1e6, rel=0.02)
        assert all(t.tolerance == 0.1 for t in budgeted.trials)

    def test_rfc2544_tolerance_validated(self):
        from repro.analysis.rfc2544 import throughput_test

        with pytest.raises(ConfigurationError, match="loss_tolerance"):
            throughput_test(lambda pps: 0.0, 1e6, loss_tolerance=1.0)


class TestParallelErrorMessages:
    """Satellite: failures name the point key and the attempt count."""

    def test_crash_message_names_point_key_and_attempts(self):
        import os

        from repro.errors import WorkerCrashError
        from repro.parallel import run_parallel

        if not hasattr(os, "fork"):
            pytest.skip("needs fork start method")
        with pytest.raises(WorkerCrashError) as excinfo:
            run_parallel([("flap", 3), ("ok", 1)], _crash, jobs=2,
                         retries=1)
        message = str(excinfo.value)
        assert "key 'seq:[str:flap,int:3]'" in message
        assert "died with exit code" in message
        assert "2 attempt(s)" in message

    def test_timeout_message_names_point_key_and_attempts(self):
        import os

        from repro.errors import PointTimeoutError
        from repro.parallel import run_parallel

        if not hasattr(os, "fork"):
            pytest.skip("needs fork start method")
        with pytest.raises(PointTimeoutError) as excinfo:
            run_parallel([7, 8], _hang, jobs=2, timeout_s=0.2, retries=0)
        message = str(excinfo.value)
        assert "key 'int:7'" in message
        assert "exceeded 0.2 s" in message
        assert "1 attempt(s)" in message


def _crash(point, seed):
    import os

    if point == ("flap", 3):
        os._exit(9)
    return point


def _hang(point, seed):
    import time

    while point == 7:
        time.sleep(0.05)
    return point
