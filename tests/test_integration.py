"""Integration tests: full scenarios across core + nicsim + dut."""

import numpy as np
import pytest

from repro import (
    CbrPattern,
    GapFiller,
    ManualTxCounter,
    MoonGenEnv,
    PoissonPattern,
    Timestamper,
    parse_ip_address,
    units,
)
from repro.dut import DutConfig, OvsForwarder, StoreAndForwardSwitch
from repro.nicsim.cpu import OpCosts
from repro.nicsim.link import Cable, FIBER_OM3
from repro.nicsim.nic import CHIP_82599
import io


class TestLineRateScenarios:
    def test_single_core_line_rate(self):
        """Section 5.2: one core saturates 10 GbE with 64 B packets."""
        env = MoonGenEnv(seed=1, core_freq_hz=2.4e9)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)

        def slave(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60))
            bufs = mem.buf_array()
            while env.running():
                bufs.alloc(60)
                bufs.charge_random_fields(1)
                yield queue.send(bufs)

        env.launch(slave, env, tx.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=1_000_000)
        pps = tx.tx_packets / (env.now_ns / 1e9)
        assert pps == pytest.approx(units.LINE_RATE_10G_64B_PPS, rel=0.01)

    def test_cpu_bound_below_line_rate(self):
        """At 1.2 GHz the heavy script is CPU-bound (Figure 2 regime)."""
        env = MoonGenEnv(seed=1, core_freq_hz=1.2e9)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)

        def slave(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60))
            bufs = mem.buf_array()
            while env.running():
                bufs.alloc(60)
                bufs.charge_random_fields(8)
                bufs.offload_ip_checksums()
                yield queue.send(bufs)

        env.launch(slave, env, tx.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=1_000_000)
        pps = tx.tx_packets / (env.now_ns / 1e9)
        assert 5e6 < pps < 8e6  # CPU-bound, not line rate

    def test_two_queue_multi_core_scaling(self):
        """Two cores on separate queues of one port double the rate until
        the line rate limit (Section 5.3's architecture assumption)."""
        def run(cores):
            env = MoonGenEnv(seed=2, core_freq_hz=1.2e9)
            tx = env.config_device(0, tx_queues=max(cores, 1))
            rx = env.config_device(1, rx_queues=1)
            env.connect(tx, rx)

            def slave(env, queue):
                mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                    pkt_length=60))
                bufs = mem.buf_array()
                while env.running():
                    bufs.alloc(60)
                    bufs.charge_random_fields(8)
                    yield queue.send(bufs)

            for c in range(cores):
                env.launch(slave, env, tx.get_tx_queue(c))
            env.wait_for_slaves(duration_ns=500_000)
            return tx.tx_packets / (env.now_ns / 1e9)

        one, two = run(1), run(2)
        assert two == pytest.approx(2 * one, rel=0.1)


class TestQosScenario:
    def test_two_flows_with_rate_control(self):
        """The Section 4 example: two rate-controlled flows, counted by
        UDP destination port at the receiver."""
        env = MoonGenEnv(seed=3)
        tx = env.config_device(0, tx_queues=2)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        tx.get_tx_queue(0).set_rate(800.0)
        tx.get_tx_queue(1).set_rate(100.0)
        received = {}

        def load(env, queue, port):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=120, udp_dst=port))
            bufs = mem.buf_array(16)
            while env.running():
                bufs.alloc(120)
                yield queue.send(bufs)

        def count(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(64)
            while env.running():
                n = yield queue.recv(bufs, timeout_ns=500_000)
                for i in range(n):
                    port = bufs[i].udp_packet.udp.get_dst_port()
                    received[port] = received.get(port, 0) + 1
                bufs.free_all()

        env.launch(load, env, tx.get_tx_queue(0), 42)
        env.launch(load, env, tx.get_tx_queue(1), 43)
        env.launch(count, env, rx.get_rx_queue(0))
        env.wait_for_slaves(duration_ns=20_000_000)
        assert set(received) == {42, 43}
        ratio = received[42] / received[43]
        assert ratio == pytest.approx(8.0, rel=0.15)


class TestLatencyThroughDut:
    def build(self, seed=4, dut_config=None):
        env = MoonGenEnv(seed=seed)
        tx = env.config_device(0, tx_queues=2)
        rx = env.config_device(1, rx_queues=1)
        dut = OvsForwarder(env.loop, dut_config)
        env.connect_to_sink(tx, dut.ingress)
        dut.connect_output(env.wire_to_device(rx))
        return env, tx, rx, dut

    def test_probes_measure_forwarding_latency(self):
        env, tx, rx, dut = self.build()

        def load(env, queue):
            mem = env.create_mempool(fill=lambda b: b.eth_packet.fill(
                eth_type=0x0800))
            bufs = mem.buf_array(16)
            while env.running():
                bufs.alloc(60)
                yield queue.send(bufs)

        load_queue = tx.get_tx_queue(0)
        load_queue.set_rate_pps(0.5e6, 64)
        env.launch(load, env, load_queue)
        ts = Timestamper(env, tx.get_tx_queue(1), rx)
        env.launch(ts.probe_task, 50, 100_000.0)
        env.wait_for_slaves(duration_ns=10_000_000)
        assert len(ts.histogram) >= 45
        med = ts.histogram.median()
        # Pipeline 15 µs + service dominates at 0.5 Mpps.
        assert 15_000 < med < 40_000

    def test_crc_fillers_invisible_to_dut(self):
        """Figure 10's premise: filler frames never reach DuT software."""
        env, tx, rx, dut = self.build(seed=5)
        filler = GapFiller()

        def craft(buf, index):
            buf.eth_packet.fill(eth_type=0x0800)

        env.launch(filler.load_task, env, tx.get_tx_queue(0),
                   CbrPattern(1e6), 100, craft)
        env.wait_for_slaves(duration_ns=10_000_000)
        assert dut.forwarded == 100
        assert dut.rx_crc_errors > 0
        assert dut.rx_dropped == 0

    def test_poisson_latency_above_cbr_near_saturation(self):
        """Figure 11: Poisson stresses buffers more than CBR."""
        def run(pattern):
            env, tx, rx, dut = self.build(seed=6)
            filler = GapFiller()

            def craft(buf, index):
                buf.eth_packet.fill(eth_type=0x0800)

            env.launch(filler.load_task, env, tx.get_tx_queue(0),
                       pattern, 4000, craft)
            env.wait_for_slaves(duration_ns=10_000_000)
            latencies = []
            for pkt in rx.get_rx_queue(0).try_fetch(10_000):
                dep = pkt.frame.meta.get("dut_departure_ps")
                arr = pkt.frame.meta.get("dut_arrival_ps")
                if dep is not None and arr is not None:
                    latencies.append((dep - arr) / 1000)
            return np.median(latencies)

        cbr = run(CbrPattern(1.7e6))
        poisson = run(PoissonPattern(1.7e6, seed=8))
        assert poisson > cbr

    def test_switch_workaround_path(self):
        """Section 8.4: a store-and-forward switch strips invalid frames
        before a hardware DuT."""
        env = MoonGenEnv(seed=7)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        switch = StoreAndForwardSwitch(env.loop)
        env.connect_to_sink(tx, switch.ingress)
        switch.connect_output(env.wire_to_device(rx))
        filler = GapFiller()

        def craft(buf, index):
            buf.eth_packet.fill(eth_type=0x0800)

        env.launch(filler.load_task, env, tx.get_tx_queue(0),
                   CbrPattern(1e6), 50, craft)
        env.wait_for_slaves(duration_ns=10_000_000)
        assert rx.rx_packets == 50
        assert rx.rx_crc_errors == 0  # the switch already dropped fillers
        assert switch.rx_crc_errors > 0


class TestTimestampingScenario:
    def test_table3_fiber_constant_and_bimodal(self):
        """Table 3: 2 m fiber is (nearly) constant, 8.5 m is bimodal."""
        def measure(length):
            env = MoonGenEnv(seed=8)
            a = env.config_device(0, tx_queues=1, rx_queues=1, chip=CHIP_82599)
            b = env.config_device(1, tx_queues=1, rx_queues=1, chip=CHIP_82599)
            env.connect(a, b, cable=Cable(FIBER_OM3, length))
            ts = Timestamper(env, a.get_tx_queue(0), b, seed=3)
            env.launch(ts.probe_task, 200, 5_000.0)
            env.wait_for_slaves(duration_ns=10_000_000)
            return ts.histogram

        h2 = measure(2.0)
        assert h2.median() == pytest.approx(320.0, abs=6.5)
        h85 = measure(8.5)
        values = set(round(v, 1) for v in h85.samples)
        assert {345.6, 358.4} & values  # the paper's two observed values

    def test_counter_stats_track_throughput(self):
        env = MoonGenEnv(seed=9)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        out = io.StringIO()
        ctr = ManualTxCounter("int", "csv", now_ns=lambda: env.now_ns,
                              stream=out)

        def slave(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60))
            bufs = mem.buf_array()
            while env.running():
                bufs.alloc(60)
                sent = yield queue.send(bufs)
                ctr.update_with_size(sent, 64)

        env.launch(slave, env, tx.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=2_000_000)
        assert ctr.total_packets == tx.tx_packets
        assert ctr.average_pps() == pytest.approx(
            units.LINE_RATE_10G_64B_PPS, rel=0.05
        )
