"""Tests for the task scheduler, send/recv ops, and queue wrappers."""

import pytest

from repro import MoonGenEnv
from repro.core.tasks import materialize_frame
from repro.errors import RateControlError, TaskError
from repro.packet import PacketData
from repro.packet.checksum import internet_checksum
from repro import units


def simple_env(tx_queues=1, rx_queues=1):
    env = MoonGenEnv(seed=0, cost_noise=False)
    tx = env.config_device(0, tx_queues=tx_queues)
    rx = env.config_device(1, rx_queues=rx_queues)
    env.connect(tx, rx)
    return env, tx, rx


class TestMaterializeFrame:
    def make_buf(self, env):
        pool = env.create_mempool(n_buffers=4)
        bufs = pool.buf_array(1)
        bufs.alloc(60)
        return bufs[0]

    def test_snapshot_is_independent(self):
        env = MoonGenEnv()
        buf = self.make_buf(env)
        buf.udp_packet.fill(ip_dst="10.0.0.1")
        frame = materialize_frame(buf)
        buf.pkt.data[30] ^= 0xFF  # later mutation must not affect the frame
        assert frame.data[30] != buf.pkt.data[30]

    def test_offload_computes_checksums_on_wire_only(self):
        env = MoonGenEnv()
        buf = self.make_buf(env)
        p = buf.udp_packet
        p.fill(ip_src="10.0.0.1", ip_dst="10.0.0.2", udp_src=1, udp_dst=2)
        buf.offload_ip = True
        buf.offload_l4 = True
        frame = materialize_frame(buf)
        wire_pkt = PacketData.wrap(bytearray(frame.data))
        assert wire_pkt.ip_packet.ip.verify_checksum()
        assert wire_pkt.udp_packet.verify_udp_checksum()
        assert wire_pkt.udp_packet.udp.checksum != 0
        # The buffer itself was not modified (hardware offloading).
        assert buf.udp_packet.udp.checksum == 0

    def test_tcp_offload(self):
        env = MoonGenEnv()
        buf = self.make_buf(env)
        buf.tcp_packet.fill(ip_src="10.0.0.1", ip_dst="10.0.0.2",
                            tcp_src=1, tcp_dst=2)
        buf.offload_ip = True
        buf.offload_l4 = True
        frame = materialize_frame(buf)
        wire = PacketData.wrap(bytearray(frame.data))
        segment = bytes(wire.data[34:60])
        from repro.packet.checksum import pseudo_header_sum_v4
        pseudo = pseudo_header_sum_v4(0x0A000001, 0x0A000002, 6, 26)
        assert internet_checksum(segment, pseudo) == 0

    def test_corrupt_fcs_flag(self):
        env = MoonGenEnv()
        buf = self.make_buf(env)
        buf.corrupt_fcs = True
        assert not materialize_frame(buf).fcs_ok

    def test_timestamp_flag_propagates(self):
        env = MoonGenEnv()
        buf = self.make_buf(env)
        buf.timestamp_flag = True
        assert materialize_frame(buf).meta.get("timestamp")

    def test_recycle_returns_to_pool(self):
        env = MoonGenEnv()
        pool = env.create_mempool(n_buffers=2)
        bufs = pool.buf_array(1)
        bufs.alloc(60)
        frame = materialize_frame(bufs.release()[0])
        assert pool.available == 1
        frame.recycle()
        assert pool.available == 2


class TestSendOp:
    def test_send_returns_count(self):
        env, tx, rx = simple_env()
        results = []

        def slave(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(16)
            bufs.alloc(60)
            sent = yield queue.send(bufs)
            results.append(sent)

        env.launch(slave, env, tx.get_tx_queue(0))
        env.wait_for_slaves()
        assert results == [16]

    def test_send_blocks_on_full_ring_until_space(self):
        env, tx, rx = simple_env()

        def slave(env, queue):
            mem = env.create_mempool(n_buffers=8192)
            bufs = mem.buf_array(600)  # larger than the 512-deep ring
            bufs.alloc(60)
            sent = yield queue.send(bufs)
            return sent

        task = env.launch(slave, env, tx.get_tx_queue(0))
        env.wait_for_slaves()
        assert task.result == 600
        assert tx.tx_packets == 600

    def test_empty_batch(self):
        env, tx, rx = simple_env()

        def slave(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(4)  # never alloc'd: empty
            sent = yield queue.send(bufs)
            return sent

        task = env.launch(slave, env, tx.get_tx_queue(0))
        env.wait_for_slaves()
        assert task.result == 0

    def test_cycle_charging_advances_time(self):
        env, tx, rx = simple_env()
        stamps = []

        def slave(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(63)
            bufs.alloc(60)
            stamps.append(env.now_ns)
            yield queue.send(bufs)
            stamps.append(env.now_ns)

        env.launch(slave, env, tx.get_tx_queue(0))
        env.wait_for_slaves()
        # 63 packets * 76 cycles at 2.4 GHz = ~1995 ns of CPU time.
        assert stamps[1] - stamps[0] == pytest.approx(63 * 76 / 2.4, rel=0.01)

    def test_ledger_charged_once(self):
        env, tx, rx = simple_env()
        stamps = []

        def slave(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(10)
            bufs.alloc(60)
            bufs.charge_random_fields(8)
            start = env.now_ns
            yield queue.send(bufs)
            stamps.append(env.now_ns - start)
            bufs.alloc(60)
            start = env.now_ns
            yield queue.send(bufs)
            stamps.append(env.now_ns - start)

        env.launch(slave, env, tx.get_tx_queue(0))
        env.wait_for_slaves()
        # First send pays 76 + 133.5 per packet, second only 76.
        assert stamps[0] == pytest.approx(10 * (76 + 133.5) / 2.4, rel=0.01)
        assert stamps[1] == pytest.approx(10 * 76 / 2.4, rel=0.02)


class TestRecvOp:
    def test_recv_returns_packets(self):
        env, tx, rx = simple_env()
        got = []

        def sender(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(8)
            bufs.alloc(60)
            yield queue.send(bufs)

        def receiver(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(32)
            while sum(x[0] for x in got) < 8:
                n = yield queue.recv(bufs, timeout_ns=500_000)
                if n == 0:
                    break
                got.append((n, [b.pkt.size for b in bufs]))
                bufs.free_all()

        env.launch(sender, env, tx.get_tx_queue(0))
        env.launch(receiver, env, rx.get_rx_queue(0))
        env.wait_for_slaves(duration_ns=1_000_000)
        assert sum(n for n, _ in got) == 8
        assert all(size == 60 for _, sizes in got for size in sizes)

    def test_recv_timeout(self):
        env, tx, rx = simple_env()

        def receiver(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(8)
            n = yield queue.recv(bufs, timeout_ns=10_000)
            return n

        task = env.launch(receiver, env, rx.get_rx_queue(0))
        env.wait_for_slaves()
        assert task.result == 0
        assert env.now_ns >= 10.0  # waited out the timeout (10 µs)

    def test_recv_wakes_on_arrival(self):
        env, tx, rx = simple_env()

        def receiver(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(8)
            n = yield queue.recv(bufs)
            return (n, env.now_ns)

        def sender(env, queue):
            yield env.sleep_us(5)
            mem = env.create_mempool()
            bufs = mem.buf_array(1)
            bufs.alloc(60)
            yield queue.send(bufs)

        rx_task = env.launch(receiver, env, rx.get_rx_queue(0))
        env.launch(sender, env, tx.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=1_000_000)
        n, when = rx_task.result
        assert n == 1
        assert 5_000 < when * 1000 < 100_000 * 1000

    def test_parked_recv_exits_when_stopped(self):
        env, tx, rx = simple_env()

        def receiver(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(8)
            while env.running():
                yield queue.recv(bufs)
                bufs.free_all()
            return "clean-exit"

        task = env.launch(receiver, env, rx.get_rx_queue(0))
        env.wait_for_slaves(duration_ns=100_000)
        assert task.result == "clean-exit"

    def test_rx_packet_parsing(self):
        env, tx, rx = simple_env()
        ports = []

        def sender(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60, udp_dst=4242))
            bufs = mem.buf_array(4)
            bufs.alloc(60)
            yield queue.send(bufs)

        def receiver(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(8)
            while len(ports) < 4:
                n = yield queue.recv(bufs, timeout_ns=500_000)
                if n == 0:
                    break
                for buf in bufs:
                    ports.append(buf.udp_packet.udp.get_dst_port())
                bufs.free_all()

        env.launch(sender, env, tx.get_tx_queue(0))
        env.launch(receiver, env, rx.get_rx_queue(0))
        env.wait_for_slaves(duration_ns=1_000_000)
        assert ports == [4242] * 4


class TestTaskLifecycle:
    def test_non_generator_rejected(self):
        env, tx, rx = simple_env()
        with pytest.raises(TaskError):
            env.launch(lambda env: None, env)

    def test_errors_propagate(self):
        env, tx, rx = simple_env()

        def bad(env):
            yield env.sleep_ns(10)
            raise RuntimeError("script bug")

        env.launch(bad, env)
        with pytest.raises(RuntimeError):
            env.wait_for_slaves()

    def test_unsupported_op(self):
        env, tx, rx = simple_env()

        def bad(env):
            yield object()

        env.launch(bad, env)
        with pytest.raises(TaskError):
            env.wait_for_slaves()

    def test_charge_cycles_op(self):
        env, tx, rx = simple_env()

        def slave(env):
            yield env.charge_cycles(2400)
            return env.now_ns

        task = env.launch(slave, env)
        env.wait_for_slaves()
        assert task.result == pytest.approx(1000.0)  # 2400 cyc @ 2.4 GHz

    def test_sleep_ops(self):
        env, tx, rx = simple_env()

        def slave(env):
            yield env.sleep_ns(100)
            yield env.sleep_us(1)
            yield env.sleep_ms(0.001)
            return env.now_ns

        task = env.launch(slave, env)
        env.wait_for_slaves()
        assert task.result == pytest.approx(100 + 1000 + 1000)


class TestQueueWrappers:
    def test_set_rate_guard_above_9mpps(self):
        """Section 7.5: hardware rate control unreliable above ~9 Mpps."""
        env, tx, rx = simple_env()
        queue = tx.get_tx_queue(0)
        with pytest.raises(RateControlError):
            queue.set_rate_pps(10e6, 64)
        with pytest.raises(RateControlError):
            queue.set_rate(9000)  # ~13.4 Mpps at 64 B

    def test_set_rate_ok_below_limit(self):
        env, tx, rx = simple_env()
        queue = tx.get_tx_queue(0)
        queue.set_rate_pps(1e6, 64)
        assert queue.rate_mbps == pytest.approx(1e6 * 84 * 8 / 1e6)

    def test_try_fetch(self):
        env, tx, rx = simple_env()

        def sender(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(4)
            bufs.alloc(60)
            yield queue.send(bufs)

        env.launch(sender, env, tx.get_tx_queue(0))
        env.wait_for_slaves()
        packets = rx.get_rx_queue(0).try_fetch(10)
        assert len(packets) == 4

    def test_counters_exposed(self):
        env, tx, rx = simple_env()

        def sender(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(4)
            bufs.alloc(60)
            yield queue.send(bufs)

        env.launch(sender, env, tx.get_tx_queue(0))
        env.wait_for_slaves()
        assert tx.get_tx_queue(0).tx_packets == 4
        assert tx.get_tx_queue(0).tx_bytes == 4 * 64
        assert rx.get_rx_queue(0).rx_packets == 4
