"""Tests for inter-task pipes (Section 3.4)."""

import pytest

from repro import MoonGenEnv
from repro.core.pipes import Pipe
from repro.errors import ConfigurationError


class TestPipeBasics:
    def test_fifo_order(self):
        pipe = Pipe()
        for i in range(5):
            assert pipe.send(i)
        assert [pipe.try_recv() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_empty_recv(self):
        assert Pipe().try_recv() is None

    def test_full_pipe_drops(self):
        pipe = Pipe(capacity=2)
        assert pipe.send("a") and pipe.send("b")
        assert not pipe.send("c")
        assert pipe.dropped == 1
        assert pipe.sent == 2

    def test_len_and_full(self):
        pipe = Pipe(capacity=3)
        pipe.send(1)
        assert len(pipe) == 1
        assert not pipe.full
        pipe.send(2)
        pipe.send(3)
        assert pipe.full

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            Pipe(capacity=0)

    def test_signal_on_send(self):
        pipe = Pipe()
        woke = []
        pipe.data_signal.wait(lambda v: woke.append(1))
        pipe.send("x")
        assert woke == [1]


class TestPipeTasks:
    def test_producer_consumer(self):
        env = MoonGenEnv()
        pipe = Pipe()
        received = []

        def producer(env):
            for i in range(10):
                pipe.send(i)
                yield env.sleep_us(1)

        def consumer(env):
            while len(received) < 10:
                msg = yield pipe.recv(timeout_ns=5_000_000)
                if msg is None:
                    return
                received.append(msg)

        env.launch(producer, env)
        env.launch(consumer, env)
        env.wait_for_slaves(duration_ns=1_000_000)
        assert received == list(range(10))

    def test_recv_timeout(self):
        env = MoonGenEnv()
        pipe = Pipe()

        def consumer(env):
            msg = yield pipe.recv(timeout_ns=20_000)
            return (msg, env.now_ns)

        task = env.launch(consumer, env)
        env.wait_for_slaves()
        msg, when = task.result
        assert msg is None
        assert when >= 20.0

    def test_consumer_wakes_on_late_send(self):
        env = MoonGenEnv()
        pipe = Pipe()

        def producer(env):
            yield env.sleep_us(50)
            pipe.send("late")

        def consumer(env):
            msg = yield pipe.recv()
            return (msg, env.now_ns)

        env.launch(producer, env)
        task = env.launch(consumer, env)
        env.wait_for_slaves(duration_ns=1_000_000)
        msg, when = task.result
        assert msg == "late"
        assert when == pytest.approx(50_000, abs=1000)

    def test_blocked_consumer_exits_on_stop(self):
        env = MoonGenEnv()
        pipe = Pipe()

        def consumer(env):
            while env.running():
                msg = yield pipe.recv()
                if msg is None:
                    break
            return "done"

        task = env.launch(consumer, env)
        env.wait_for_slaves(duration_ns=50_000)
        assert task.result == "done"

    def test_stats_passed_between_tasks(self):
        """The QoS example's pattern: slaves report counts to a collector."""
        env = MoonGenEnv()
        pipe = Pipe()
        totals = []

        def worker(env, worker_id):
            count = 0
            for _ in range(5):
                yield env.sleep_us(2)
                count += 63
            pipe.send((worker_id, count))

        def collector(env):
            got = 0
            while got < 2:
                msg = yield pipe.recv(timeout_ns=10_000_000)
                if msg is None:
                    return
                totals.append(msg)
                got += 1

        env.launch(worker, env, 0)
        env.launch(worker, env, 1)
        env.launch(collector, env)
        env.wait_for_slaves(duration_ns=5_000_000)
        assert sorted(totals) == [(0, 315), (1, 315)]
