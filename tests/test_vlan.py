"""Tests for 802.1Q VLAN tagging."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PacketError
from repro.packet import PacketData
from repro.packet.vlan import (
    TPID_QINQ,
    TPID_VLAN,
    insert_vlan_tag,
    is_vlan_tagged,
    read_vlan_tag,
    strip_vlan_tag,
)


def udp_pkt(size=60):
    pkt = PacketData(size)
    pkt.udp_packet.fill(pkt_length=size, ip_dst="10.0.0.1", udp_dst=42)
    return pkt


class TestInsert:
    def test_tag_fields(self):
        pkt = udp_pkt()
        tag = insert_vlan_tag(pkt, vid=100, pcp=5, dei=1)
        assert tag.tpid == TPID_VLAN
        assert tag.vid == 100
        assert tag.pcp == 5
        assert tag.dei == 1

    def test_frame_grows_by_four(self):
        pkt = udp_pkt()
        insert_vlan_tag(pkt, vid=1)
        assert pkt.size == 64

    def test_payload_shifted_intact(self):
        pkt = udp_pkt()
        original = pkt.bytes()
        insert_vlan_tag(pkt, vid=7)
        # MACs unchanged, EtherType position now holds the TPID, and the
        # original EtherType+payload follow the tag.
        assert pkt.bytes()[:12] == original[:12]
        assert pkt.bytes()[16:] == original[12:]

    def test_is_tagged(self):
        pkt = udp_pkt()
        assert not is_vlan_tagged(pkt)
        insert_vlan_tag(pkt, vid=7)
        assert is_vlan_tagged(pkt)

    def test_qinq_tpid(self):
        pkt = udp_pkt()
        insert_vlan_tag(pkt, vid=7, tpid=TPID_QINQ)
        assert read_vlan_tag(pkt).tpid == TPID_QINQ

    def test_stacked_tags(self):
        pkt = udp_pkt()
        insert_vlan_tag(pkt, vid=10)             # inner
        insert_vlan_tag(pkt, vid=20, tpid=TPID_QINQ)  # outer
        assert read_vlan_tag(pkt).vid == 20
        strip_vlan_tag(pkt)
        assert read_vlan_tag(pkt).vid == 10

    def test_rejects_bad_vid(self):
        with pytest.raises(PacketError):
            insert_vlan_tag(udp_pkt(), vid=4096)

    def test_rejects_short_frame(self):
        with pytest.raises(PacketError):
            insert_vlan_tag(PacketData(10), vid=1)

    def test_rejects_without_capacity(self):
        pkt = PacketData(60, capacity=60)
        with pytest.raises(PacketError):
            insert_vlan_tag(pkt, vid=1)


class TestStrip:
    def test_roundtrip(self):
        pkt = udp_pkt()
        original = pkt.bytes()
        insert_vlan_tag(pkt, vid=123)
        assert strip_vlan_tag(pkt) == 123
        assert pkt.bytes() == original
        assert pkt.classify() == "udp4"

    def test_strip_untagged_raises(self):
        with pytest.raises(PacketError):
            strip_vlan_tag(udp_pkt())

    @given(st.integers(min_value=0, max_value=4095),
           st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=1))
    def test_tci_roundtrip_property(self, vid, pcp, dei):
        pkt = udp_pkt()
        insert_vlan_tag(pkt, vid=vid, pcp=pcp, dei=dei)
        tag = read_vlan_tag(pkt)
        assert (tag.vid, tag.pcp, tag.dei) == (vid, pcp, dei)
        assert strip_vlan_tag(pkt) == vid


class TestOnTheWire:
    def test_tagged_frames_cross_the_simulation(self):
        from repro import MoonGenEnv
        env = MoonGenEnv(seed=1)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        vids = []

        def sender(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60, udp_dst=42))
            bufs = mem.buf_array(4)
            bufs.alloc(60)
            for i, buf in enumerate(bufs):
                insert_vlan_tag(buf.pkt, vid=100 + i, pcp=3)
            yield queue.send(bufs)

        def receiver(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(8)
            while len(vids) < 4 and env.running():
                n = yield queue.recv(bufs, timeout_ns=500_000)
                for i in range(n):
                    if is_vlan_tagged(bufs[i].pkt):
                        vids.append(strip_vlan_tag(bufs[i].pkt))
                        assert bufs[i].pkt.classify() == "udp4"
                bufs.free_all()

        env.launch(sender, env, tx.get_tx_queue(0))
        env.launch(receiver, env, rx.get_rx_queue(0))
        env.wait_for_slaves(duration_ns=2_000_000)
        assert sorted(vids) == [100, 101, 102, 103]
