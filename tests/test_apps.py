"""Tests for the scanner and analyzer applications (Section 10)."""

import pytest

from repro import MoonGenEnv
from repro.apps import FlowAnalyzer, ResponderPopulation, SynScanner
from repro.errors import ConfigurationError


class TestSynScanner:
    def build(self, count=500, response_probability=0.1, seed=3):
        env = MoonGenEnv(seed=seed)
        dev = env.config_device(0, tx_queues=1, rx_queues=1)
        population = ResponderPopulation(
            env.loop, response_probability=response_probability, seed=seed)
        env.connect_to_sink(dev, population.ingress)
        population.connect_output(env.wire_to_device(dev))
        scanner = SynScanner(env, dev, "45.0.0.0", count,
                             probe_rate_pps=5e6)
        env.launch(scanner.scan_task)
        env.launch(scanner.collect_task)
        env.wait_for_slaves(duration_ns=count * 300.0 + 5e6)
        return scanner, population

    def test_all_probes_sent(self):
        scanner, population = self.build(count=300)
        assert scanner.probes_sent == 300
        assert population.probes_seen == 300

    def test_finds_exactly_the_responders(self):
        scanner, population = self.build(count=500)
        expected = population.expected_responders("45.0.0.0", 500)
        assert expected > 10  # the population is non-trivial
        assert scanner.open_hosts == expected

    def test_rst_answers_counted_separately(self):
        scanner, population = self.build(count=400)
        assert scanner.rst_seen > 0
        # RSTs are closed ports, not responders.
        assert scanner.open_hosts + scanner.rst_seen <= 400

    def test_density_scales_with_probability(self):
        sparse, _ = self.build(count=400, response_probability=0.05, seed=5)
        dense, _ = self.build(count=400, response_probability=0.5, seed=5)
        assert dense.open_hosts > 3 * sparse.open_hosts

    def test_rejects_empty_range(self):
        env = MoonGenEnv()
        dev = env.config_device(0, tx_queues=1, rx_queues=1)
        with pytest.raises(ConfigurationError):
            SynScanner(env, dev, "45.0.0.0", 0)

    def test_scan_is_deterministic(self):
        a, _ = self.build(count=300, seed=7)
        b, _ = self.build(count=300, seed=7)
        assert a.responders == b.responders


class TestFlowAnalyzer:
    def build(self, n_flows=20, packets_per_flow=30, queues=4):
        env = MoonGenEnv(seed=11)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=queues)
        env.connect(tx, rx)
        analyzer = FlowAnalyzer(env, rx)
        analyzer.launch_all()

        def sender(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60))
            bufs = mem.buf_array(n_flows)
            for _ in range(packets_per_flow):
                bufs.alloc(60)
                for i, buf in enumerate(bufs):
                    p = buf.udp_packet
                    p.ip.src = 0x0A000000 + i
                    p.udp.src_port = 1000 + i
                    p.udp.dst_port = 80
                yield queue.send(bufs)

        env.launch(sender, env, tx.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=20_000_000)
        return analyzer

    def test_counts_every_packet(self):
        analyzer = self.build(n_flows=20, packets_per_flow=30)
        assert analyzer.total_packets == 600

    def test_flow_table_contents(self):
        analyzer = self.build(n_flows=10, packets_per_flow=25)
        merged = analyzer.merged()
        assert len(merged) == 10
        assert all(s.packets == 25 for s in merged.values())
        assert all(s.bytes == 25 * 64 for s in merged.values())

    def test_rss_spreads_queues(self):
        analyzer = self.build(n_flows=64, packets_per_flow=10, queues=4)
        loads = analyzer.queue_loads()
        assert sum(loads) == 640
        assert all(load > 0 for load in loads)

    def test_flows_never_split_across_queues(self):
        """RSS stickiness: each flow lives in exactly one table."""
        analyzer = self.build(n_flows=32, packets_per_flow=10, queues=4)
        seen = set()
        for table in analyzer.tables:
            for key in table:
                assert key not in seen
                seen.add(key)

    def test_top_flows(self):
        env = MoonGenEnv(seed=12)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=2)
        env.connect(tx, rx)
        analyzer = FlowAnalyzer(env, rx)
        analyzer.launch_all()

        def sender(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60))
            bufs = mem.buf_array(1)
            # Flow A: 50 packets; flow B: 5 packets.
            for i in range(55):
                bufs.alloc(60)
                p = bufs[0].udp_packet
                p.ip.src = 0x0A000001 if i < 50 else 0x0A000002
                p.udp.src_port = 1111 if i < 50 else 2222
                yield queue.send(bufs)

        env.launch(sender, env, tx.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=10_000_000)
        top = analyzer.top_flows(1)
        assert top[0][1].packets == 50
        assert top[0][0][2] == 1111

    def test_non_ip_counted(self):
        env = MoonGenEnv(seed=13)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=2)
        env.connect(tx, rx)
        analyzer = FlowAnalyzer(env, rx)
        analyzer.launch_all()

        def sender(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(4)
            bufs.alloc(60)
            for buf in bufs:
                buf.pkt.arp_packet.fill()
            yield queue.send(bufs)

        env.launch(sender, env, tx.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=5_000_000)
        assert analyzer.non_ip == 4
        assert analyzer.total_packets == 0
