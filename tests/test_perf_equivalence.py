"""Property tests: the hot-path optimizations are behaviour-preserving.

The perf work (docs/PERFORMANCE.md) is only legal because every shortcut
is exactly equivalent to the code it replaced.  These tests pin that with
randomized inputs:

* the same-instant FIFO fast lane fires events in exactly the order the
  reference model (a stable sort by scheduled time) prescribes, under
  arbitrary mixes of zero-delay bursts, timers, and cancellations;
* :class:`FramePool` recycling is invisible: a recycled shell is
  byte-identical to a freshly constructed :class:`SimFrame` (payload,
  sizes, flags, fresh meta dict, fresh seq);
* a traced transmit run produces byte-identical golden traces whether
  ``fast_forward`` is requested or not (the tracer gate must win);
* the steady-state fast-forward accelerator reproduces the event-driven
  final counters exactly across randomized batch sizes, frame sizes and
  durations.
"""

from hypothesis import given, settings, strategies as st

from repro import MoonGenEnv
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.nic import FramePool, SimFrame
from repro.trace import Tracer
from tests._hypothesis_profiles import property_settings

SETTINGS = property_settings()


# ---------------------------------------------------------------------------
# same-instant fast lane vs the reference schedule


# One scheduling "program": (delay, n_same_instant_followers, cancel_self).
lane_program = st.lists(
    st.tuples(st.integers(min_value=0, max_value=6),
              st.integers(min_value=0, max_value=3),
              st.booleans()),
    min_size=1, max_size=30)


class TestFastLaneEquivalence:
    @settings(**SETTINGS)
    @given(lane_program)
    def test_burst_heavy_programs_fire_in_reference_order(self, program):
        """Each fired event schedules a burst of zero-delay followers (the
        shape the FIFO lane accelerates); the total order must equal the
        reference stable sort by (time, global insertion index)."""
        loop = EventLoop()
        fired = []
        reference = []
        counter = [0]

        def fire(label):
            fired.append(label)

        for i, (delay, followers, cancel) in enumerate(program):
            def root(i=i, followers=followers):
                fired.append(("root", i))
                for j in range(followers):
                    loop.schedule(0, lambda i=i, j=j: fire(("burst", i, j)))
            event = loop.schedule(delay, root)
            if cancel:
                event.cancel()
            else:
                reference.append((delay, counter[0], i))
            counter[0] += 1
        loop.run()

        expected = []
        for delay, _, i in sorted(reference):
            expected.append(("root", i))
        # Roots fire in stable (time, insertion) order; each root's burst
        # fires before any *later-instant* root but possibly interleaved
        # with same-instant roots — check the strong invariant per root.
        assert [f for f in fired if f[0] == "root"] == expected
        for i, (delay, followers, cancel) in enumerate(program):
            if cancel:
                continue
            root_at = fired.index(("root", i))
            for j in range(followers):
                assert ("burst", i, j) in fired[root_at + 1:]
        # And bursts of one root keep their own insertion order.
        for i, (_, followers, cancel) in enumerate(program):
            if cancel or followers < 2:
                continue
            positions = [fired.index(("burst", i, j)) for j in range(followers)]
            assert positions == sorted(positions)

    @settings(**SETTINGS)
    @given(lane_program)
    def test_event_count_matches_live_schedules(self, program):
        """events_processed == number of non-cancelled callbacks fired."""
        loop = EventLoop()
        for delay, followers, cancel in program:
            def root(followers=followers):
                for _ in range(followers):
                    loop.schedule(0, lambda: None)
            event = loop.schedule(delay, root)
            if cancel:
                event.cancel()
        loop.run()
        live_roots = sum(1 for _, _, cancel in program if not cancel)
        live_bursts = sum(f for _, f, cancel in program if not cancel)
        assert loop.events_processed == live_roots + live_bursts


# ---------------------------------------------------------------------------
# FramePool recycling is invisible


class TestFramePoolEquivalence:
    @settings(**SETTINGS)
    @given(st.lists(st.binary(min_size=14, max_size=128), min_size=1,
                    max_size=20),
           st.data())
    def test_recycled_shells_equal_fresh_frames(self, payloads, data):
        """Acquire/release/acquire must be indistinguishable from
        constructing a fresh SimFrame for the same payload."""
        pool = FramePool()
        seen_metas = []
        for payload in payloads:
            fcs_ok = data.draw(st.booleans())
            frame = pool.acquire(payload, fcs_ok=fcs_ok)
            fresh = SimFrame(payload, fcs_ok=fcs_ok)
            assert frame.data == fresh.data
            assert frame.size == fresh.size == len(payload) + 4
            assert frame.wire_size == fresh.wire_size
            assert frame.fcs_ok == fresh.fcs_ok
            assert frame.meta == {} == fresh.meta
            # Meta dicts must be fresh objects — a stale dict would leak
            # state (timestamps, recycle hooks) between unrelated frames.
            assert all(frame.meta is not m for m in seen_metas)
            seen_metas.append(frame.meta)
            frame.meta["recycle"] = lambda: None
            frame.meta["timestamp"] = True
            if data.draw(st.booleans()):
                pool.release(frame)

    @settings(**SETTINGS)
    @given(st.integers(min_value=1, max_value=50))
    def test_seq_numbers_stay_unique_under_recycling(self, n):
        pool = FramePool()
        seqs = set()
        for _ in range(n):
            frame = pool.acquire(b"\x00" * 60)
            assert frame.seq not in seqs
            seqs.add(frame.seq)
            pool.release(frame)
        assert pool.recycled == max(0, n - 1)


# ---------------------------------------------------------------------------
# fast-forward: traced runs and final counters


def _run_tx(fast_forward, batch, frame_size, duration_ns, trace=False):
    tracer = Tracer() if trace else None
    env = MoonGenEnv(seed=11, fast_forward=fast_forward,
                     trace=tracer)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)

    def slave(env, queue):
        mem = env.create_mempool(
            fill=lambda b: b.udp_packet.fill(pkt_length=frame_size))
        bufs = mem.buf_array(batch)
        while env.running():
            bufs.alloc(frame_size)
            yield queue.send(bufs)

    env.launch(slave, env, tx.get_tx_queue(0))
    env.wait_for_slaves(duration_ns=duration_ns)
    counters = (tx.tx_packets, tx.tx_bytes, rx.rx_packets, rx.rx_bytes,
                env.loop.now_ps)
    return counters, tx.port.fast_forwarded, (
        tracer.to_jsonl() if trace else None)


class TestFastForwardEquivalence:
    @settings(**property_settings(10))
    @given(st.integers(min_value=1, max_value=64),
           st.sampled_from([60, 124, 508, 1514]),
           st.integers(min_value=50_000, max_value=400_000))
    def test_final_counters_identical(self, batch, frame_size, duration_ns):
        plain, plain_ff, _ = _run_tx(False, batch, frame_size, duration_ns)
        fast, _, _ = _run_tx(True, batch, frame_size, duration_ns)
        assert plain_ff == 0
        assert fast == plain

    @settings(**property_settings(5))
    @given(st.integers(min_value=1, max_value=63))
    def test_traced_runs_ignore_fast_forward(self, batch):
        """The tracer gate wins: golden traces are byte-identical whether
        the accelerator was requested or not."""
        _, ff_a, trace_a = _run_tx(False, batch, 60, 100_000, trace=True)
        _, ff_b, trace_b = _run_tx(True, batch, 60, 100_000, trace=True)
        assert ff_a == ff_b == 0  # tracer forces per-frame fidelity
        assert trace_a == trace_b
