"""Tests for the cycle-cost model: Table 1 / Table 2 calibration."""

import pytest

from repro.errors import ConfigurationError
from repro.nicsim.cpu import (
    CpuCore,
    CycleCostModel,
    OpCost,
    OpCosts,
    REFERENCE_FREQ_HZ,
    frequency_steps,
    predict_throughput_pps,
)


class TestOpCost:
    def test_pure_cycles_frequency_independent(self):
        op = OpCost(cycles=10.0, stall_ns=0.0)
        assert op.at(1.2e9) == op.at(2.4e9) == 10.0

    def test_stall_scales_with_frequency(self):
        op = OpCost(cycles=0.0, stall_ns=10.0)
        assert op.at(1e9) == pytest.approx(10.0)
        assert op.at(2e9) == pytest.approx(20.0)


class TestTable1Calibration:
    """Costs at the reference 2.4 GHz must match Table 1 of the paper."""

    @pytest.mark.parametrize("name,expected,tol", [
        # Tolerances are the paper's own ± uncertainties from Table 1.
        ("tx_base", 76.0, 0.8),
        ("modify", 9.1, 1.2),
        ("modify_two_cachelines", 15.0, 1.3),
        ("offload_ip", 15.2, 1.2),
        ("offload_udp", 33.1, 3.5),
        ("offload_tcp", 34.0, 3.3),
    ])
    def test_reference_costs(self, name, expected, tol):
        costs = OpCosts()
        assert getattr(costs, name).at(REFERENCE_FREQ_HZ) == pytest.approx(
            expected, abs=tol
        )

    def test_baseline_write_plus_send(self):
        # Section 5.6.2's baseline: constant write + send = 85.1 cycles/pkt.
        costs = OpCosts()
        total = costs.tx_base.at(REFERENCE_FREQ_HZ) + costs.modify.at(REFERENCE_FREQ_HZ)
        assert total == pytest.approx(85.1, abs=0.2)


class TestTable2Calibration:
    @pytest.mark.parametrize("n,expected", [(1, 32.3), (2, 39.8), (4, 66.0), (8, 133.5)])
    def test_random_measured_points(self, n, expected):
        assert OpCosts().random_cost(n) == pytest.approx(expected)

    @pytest.mark.parametrize("n,expected", [(1, 27.1), (2, 33.1), (4, 38.1), (8, 41.7)])
    def test_counter_measured_points(self, n, expected):
        assert OpCosts().counter_cost(n) == pytest.approx(expected)

    def test_random_interpolation(self):
        costs = OpCosts()
        assert costs.random_cost(3) == pytest.approx((39.8 + 66.0) / 2)

    def test_random_extrapolation_uses_marginal(self):
        # Section 5.6.2: ~17 cycles per additional random field.
        costs = OpCosts()
        assert costs.random_cost(9) == pytest.approx(133.5 + 17.0)

    def test_counter_extrapolation(self):
        # ~1 cycle per additional wrapping-counter field.
        costs = OpCosts()
        assert costs.counter_cost(10) == pytest.approx(41.7 + 2.0)

    def test_zero_fields_cost_nothing(self):
        assert OpCosts().random_cost(0) == 0.0
        assert OpCosts().counter_cost(0) == 0.0

    def test_counters_cheaper_than_random(self):
        # The paper's conclusion: prefer wrapping counters when possible.
        costs = OpCosts()
        for n in (1, 2, 4, 8):
            assert costs.counter_cost(n) < costs.random_cost(n)


class TestCycleCostModel:
    def test_noise_reproducible(self):
        a = CycleCostModel(seed=5)
        b = CycleCostModel(seed=5)
        op = OpCosts().tx_base
        assert a.op_cycles(op, 2.4e9, 10) == b.op_cycles(op, 2.4e9, 10)

    def test_noiseless_mode_exact(self):
        model = CycleCostModel(noisy=False)
        op = OpCosts().modify
        assert model.op_cycles(op, 2.4e9, 100) == pytest.approx(9.1 * 100)

    def test_batch_scales(self):
        model = CycleCostModel(noisy=False)
        op = OpCosts().tx_base
        assert model.op_cycles(op, 2.4e9, 63) == pytest.approx(63 * 76.0)


class TestCpuCore:
    def test_charge_accounts_cycles(self):
        core = CpuCore(0, freq_hz=1e9, model=CycleCostModel(noisy=False))
        ps = core.charge(1000.0)
        assert ps == 1_000_000  # 1000 cycles at 1 GHz = 1 µs
        assert core.busy_cycles == 1000.0

    def test_frequency_changes(self):
        core = CpuCore(0, freq_hz=2.4e9)
        core.set_frequency(1.2e9)
        assert core.cycles_to_ps(1.2e9) == 10 ** 12

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            CpuCore(0, freq_hz=0)
        core = CpuCore(0)
        with pytest.raises(ConfigurationError):
            core.set_frequency(-1)


class TestPrediction:
    def test_simple_prediction(self):
        # 229.2 cycles/pkt at 2.4 GHz -> 10.47 Mpps (Section 5.6.3).
        assert predict_throughput_pps(229.2, 2.4e9) == pytest.approx(
            10.47e6, rel=1e-3
        )

    def test_rejects_nonpositive_cost(self):
        with pytest.raises(ConfigurationError):
            predict_throughput_pps(0, 1e9)

    def test_frequency_steps(self):
        steps = frequency_steps()
        assert steps[0] == pytest.approx(1.2e9)
        assert steps[-1] == pytest.approx(2.4e9)
        assert len(steps) == 13  # 100 MHz steps (Section 5.1)


class TestSection52Calibration:
    """The memory-stall term reconciles the Section 5.2 observations."""

    def light_script_cost(self, freq_hz):
        costs = OpCosts()
        return (
            costs.tx_base.at(freq_hz)
            + costs.random_cost(1)
            + costs.offload_udp.at(freq_hz)
        )

    def test_moongen_line_rate_at_1_5ghz(self):
        pps = 1.5e9 / self.light_script_cost(1.5e9)
        assert pps >= 14.87e6  # reaches 14.88 Mpps line rate

    def test_moongen_below_line_rate_at_1_4ghz(self):
        pps = 1.4e9 / self.light_script_cost(1.4e9)
        assert pps < 14.88e6
