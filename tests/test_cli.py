"""Tests for the moongen-repro command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(argv)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_defaults(self):
        args = build_parser().parse_args(["load-latency"])
        assert args.rate == 1.0
        assert args.mode == "hardware"

    def test_mode_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["load-latency", "--mode", "magic"])


class TestCommands:
    def test_quickstart(self):
        code, out = run_cli(["quickstart", "--duration-ms", "0.5"])
        assert code == 0
        assert "Mpps" in out

    def test_load_latency_hardware(self):
        code, out = run_cli([
            "load-latency", "--rate", "0.5", "--duration-ms", "5",
            "--probes", "30",
        ])
        assert code == 0
        assert "DuT forwarded" in out
        assert "median" in out

    def test_load_latency_poisson_uses_crc(self):
        code, out = run_cli([
            "load-latency", "--rate", "0.5", "--pattern", "poisson",
            "--duration-ms", "5", "--probes", "20",
        ])
        assert code == 0
        assert "poisson via crc" in out
        assert "fillers dropped in NIC" in out

    def test_inter_arrival(self):
        code, out = run_cli(["inter-arrival", "--packets", "20000"])
        assert code == 0
        for name in ("MoonGen", "Pktgen-DPDK", "zsend"):
            assert name in out

    def test_rfc2544(self):
        code, out = run_cli(["rfc2544", "--resolution", "0.05"])
        assert code == 0
        assert "zero-loss throughput" in out

    def test_timestamps(self):
        code, out = run_cli(["timestamps", "--probes", "50"])
        assert code == 0
        assert "82599/fiber" in out and "X540/copper" in out
        assert "320.0 ns" in out  # the 2 m fiber physical latency
