"""Tests for the moongen-repro command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(argv)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_defaults(self):
        args = build_parser().parse_args(["load-latency"])
        assert args.rate == 1.0
        assert args.mode == "hardware"

    def test_mode_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["load-latency", "--mode", "magic"])


class TestCommands:
    def test_quickstart(self):
        code, out = run_cli(["quickstart", "--duration-ms", "0.5"])
        assert code == 0
        assert "Mpps" in out

    def test_load_latency_hardware(self):
        code, out = run_cli([
            "load-latency", "--rate", "0.5", "--duration-ms", "5",
            "--probes", "30",
        ])
        assert code == 0
        assert "DuT forwarded" in out
        assert "median" in out

    def test_load_latency_poisson_uses_crc(self):
        code, out = run_cli([
            "load-latency", "--rate", "0.5", "--pattern", "poisson",
            "--duration-ms", "5", "--probes", "20",
        ])
        assert code == 0
        assert "poisson via crc" in out
        assert "fillers dropped in NIC" in out

    def test_inter_arrival(self):
        code, out = run_cli(["inter-arrival", "--packets", "20000"])
        assert code == 0
        for name in ("MoonGen", "Pktgen-DPDK", "zsend"):
            assert name in out

    def test_rfc2544(self):
        code, out = run_cli(["rfc2544", "--resolution", "0.05"])
        assert code == 0
        assert "zero-loss Mpps" in out
        assert "  64 " in out or "64 " in out.splitlines()[1]

    def test_rfc2544_multiple_frame_sizes_one_table(self):
        code, out = run_cli([
            "rfc2544", "--resolution", "0.05", "--duration-ms", "20",
            "--frame-size", "64", "--frame-size", "512", "--jobs", "2",
        ])
        assert code == 0
        lines = [l for l in out.splitlines() if l.strip()]
        assert lines[0].startswith("size [B]")
        sizes = [int(l.split()[0]) for l in lines[1:3]]
        assert sizes == [64, 512]

    def test_rfc2544_verbose_lists_trials(self):
        code, out = run_cli([
            "rfc2544", "--resolution", "0.05", "--verbose",
        ])
        assert code == 0
        assert "offered" in out

    def test_sweep_lists_available_sweeps(self):
        code, out = run_cli(["sweep"])
        assert code == 0
        for name in ("fig2-cores", "fig4-cores", "sec57-sizes", "rfc2544"):
            assert name in out

    def test_sweep_unknown_name_fails(self, capsys):
        code, _ = run_cli(["sweep", "nope"])
        assert code == 2

    def test_sweep_runs_points_subset(self):
        code, out = run_cli([
            "sweep", "fig2-cores", "--points", "1,2", "--jobs", "2",
        ])
        assert code == 0
        assert "cores" in out and "jobs=2" in out

    def test_bench_accepts_jobs_flag(self):
        args = build_parser().parse_args(["bench", "--jobs", "4"])
        assert args.jobs == 4

    def test_timestamps(self):
        code, out = run_cli(["timestamps", "--probes", "50"])
        assert code == 0
        assert "82599/fiber" in out and "X540/copper" in out
        assert "320.0 ns" in out  # the 2 m fiber physical latency


class TestJournalFlags:
    """The --journal/--resume/--quarantine supervision surface
    (docs/RESILIENCE.md)."""

    def test_sweep_journal_roundtrip(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        code, out = run_cli([
            "sweep", "fig2-cores", "--points", "1,2", "--jobs", "2",
            "--journal", journal,
        ])
        assert code == 0
        first_bytes = open(journal, "rb").read()
        # Resuming a complete journal re-runs nothing and adds points.
        code, out = run_cli([
            "sweep", "fig2-cores", "--points", "1,2,4", "--jobs", "1",
            "--journal", journal, "--resume",
        ])
        assert code == 0
        assert "cores" in out
        resumed_bytes = open(journal, "rb").read()
        assert first_bytes != resumed_bytes  # the new point was sealed in
        assert first_bytes.splitlines()[0] == resumed_bytes.splitlines()[0]

    def test_existing_journal_refused_without_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        assert run_cli(["sweep", "fig2-cores", "--points", "1",
                        "--journal", journal])[0] == 0
        code, _ = run_cli(["sweep", "fig2-cores", "--points", "1",
                           "--journal", journal])
        assert code == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_without_journal_is_usage_error(self, capsys):
        code, _ = run_cli(["sweep", "fig2-cores", "--points", "1",
                           "--resume"])
        assert code == 2
        assert "--journal" in capsys.readouterr().err

    def test_faults_journal_and_json(self, tmp_path):
        journal = str(tmp_path / "faults.jsonl")
        code, out = run_cli([
            "faults", "--plan", "burst-loss", "--json",
            "--journal", journal,
        ])
        assert code == 0
        import json as _json

        results = _json.loads(out)
        assert "burst-loss" in results
        assert open(journal).read().count('"kind":"point"') == 1

    def test_bench_journal_resume_fingerprints_stable(self, tmp_path):
        journal = str(tmp_path / "bench.jsonl")
        out_path = str(tmp_path / "BENCH.json")
        argv = ["bench", "--smoke", "--scenario", "eventloop",
                "--repeats", "1", "--out", out_path, "--journal", journal]
        assert run_cli(argv)[0] == 0
        sealed = open(journal, "rb").read()
        # A --resume run replays the journal: identical sealed bytes.
        assert run_cli(argv + ["--resume"])[0] == 0
        assert open(journal, "rb").read() == sealed
