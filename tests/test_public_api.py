"""API-surface checks: exports resolve, carry docs, and stay consistent."""

import importlib
import inspect

import pytest

import repro
import repro.analysis
import repro.apps
import repro.core
import repro.dut
import repro.generators
import repro.nicsim
import repro.packet
import repro.parallel

PACKAGES = [
    repro, repro.core, repro.packet, repro.nicsim, repro.dut,
    repro.generators, repro.analysis, repro.apps, repro.parallel,
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES,
                             ids=lambda p: p.__name__)
    def test_all_entries_resolve(self, package):
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package.__name__}.{name}"

    @pytest.mark.parametrize("package", PACKAGES,
                             ids=lambda p: p.__name__)
    def test_no_duplicate_exports(self, package):
        exports = list(getattr(package, "__all__", []))
        assert len(exports) == len(set(exports)), f"{package.__name__}.__all__"

    @pytest.mark.parametrize("package", PACKAGES,
                             ids=lambda p: p.__name__)
    def test_public_classes_documented(self, package):
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{package.__name__}.{name} lacks a docstring"

    def test_package_docstrings(self):
        for package in PACKAGES:
            assert package.__doc__, f"{package.__name__} lacks a docstring"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_has_the_essentials(self):
        for name in ("MoonGenEnv", "Timestamper", "GapFiller", "Histogram",
                     "PoissonPattern", "parse_ip_address"):
            assert name in repro.__all__


class TestModuleHygiene:
    MODULES = [
        "repro.units", "repro.errors", "repro.cli",
        "repro.core.env", "repro.core.device", "repro.core.queues",
        "repro.core.memory", "repro.core.tasks", "repro.core.ops",
        "repro.core.stats", "repro.core.histogram", "repro.core.flows",
        "repro.core.pipes", "repro.core.arp", "repro.core.filters",
        "repro.core.icmp_ping", "repro.core.latency", "repro.core.measure",
        "repro.core.monitor", "repro.core.ratecontrol",
        "repro.core.seqcheck", "repro.core.softpace",
        "repro.core.timestamping", "repro.testbed",
        "repro.packet.address", "repro.packet.checksum",
        "repro.packet.fields", "repro.packet.packet", "repro.packet.pcap",
        "repro.packet.vlan",
        "repro.nicsim.eventloop", "repro.nicsim.clock", "repro.nicsim.cpu",
        "repro.nicsim.link", "repro.nicsim.nic",
        "repro.dut.interrupts", "repro.dut.forwarder", "repro.dut.fastpath",
        "repro.dut.switch", "repro.dut.hardware",
        "repro.generators.base", "repro.generators.moongen",
        "repro.generators.pktgen_dpdk", "repro.generators.zsend",
        "repro.analysis.interarrival", "repro.analysis.latencystats",
        "repro.analysis.cost_estimator", "repro.analysis.rfc2544",
        "repro.apps.scanner", "repro.apps.analyzer",
        "repro.parallel.engine", "repro.parallel.seeding",
        "repro.parallel.sweeps",
    ]

    @pytest.mark.parametrize("module_name", MODULES)
    def test_importable_and_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, (
            f"{module_name} needs a real module docstring"
        )

    def test_error_hierarchy_rooted(self):
        from repro import errors
        for name in dir(errors):
            obj = getattr(errors, name)
            if (inspect.isclass(obj) and issubclass(obj, Exception)
                    and obj is not errors.ReproError):
                assert issubclass(obj, errors.ReproError), name
