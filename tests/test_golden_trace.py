"""Golden-trace regression tests.

The committed traces under ``tests/golden/`` are bit-for-bit fingerprints
of two canonical seeded runs — a CBR ``l2_load_latency``-style scenario and
a software-paced Poisson stream.  Any behavioural drift in the event loop,
NIC model, wire model, DuT, or rate control changes event timings and
therefore the trace bytes, so refactors of ``nic.py``/``link.py`` fail
loudly here instead of silently shifting benchmark numbers.

If a change is *intentional*, regenerate with::

    PYTHONPATH=src python -m repro.trace.scenarios --write-golden tests/golden

and review the trace diff like a code diff.
"""

import difflib
import json
import pathlib

import pytest

from repro.trace.scenarios import SCENARIOS, run_scenario

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def golden_path(name):
    return GOLDEN_DIR / SCENARIOS[name][1]


def assert_matches_golden(name, text):
    golden = golden_path(name).read_text()
    if text != golden:
        diff = "\n".join(difflib.unified_diff(
            golden.splitlines(), text.splitlines(),
            fromfile=f"golden/{SCENARIOS[name][1]}", tofile="current",
            lineterm="", n=2))
        pytest.fail(
            f"trace for scenario {name!r} drifted from the committed golden "
            f"(simulator behaviour changed).  If intentional, regenerate via "
            f"'python -m repro.trace.scenarios --write-golden tests/golden' "
            f"and review:\n{diff[:4000]}"
        )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestGoldenTraces:
    def test_byte_identical_to_committed_golden(self, name):
        assert_matches_golden(name, run_scenario(name))

    def test_two_runs_byte_identical(self, name):
        assert run_scenario(name) == run_scenario(name)

    def test_golden_is_wellformed_jsonl(self, name):
        lines = golden_path(name).read_text().splitlines()
        assert lines, "golden trace must not be empty"
        last_seq = -1
        for line in lines:
            obj = json.loads(line)
            assert obj["seq"] > last_seq
            last_seq = obj["seq"]
            assert obj["t"] >= 0 and isinstance(obj["t"], int)


class TestGoldenContent:
    """Pin the semantic shape of the goldens, not just their bytes."""

    def test_cbr_scenario_covers_key_record_kinds(self):
        kinds = {json.loads(line)["kind"]
                 for line in golden_path("load-latency").read_text().splitlines()}
        assert {"desc_fetch", "wire_tx", "proc_advance", "proc_finish",
                "cpu_charge", "dut_irq", "tx_tstamp_latch",
                "rx_tstamp_latch"} <= kinds

    def test_cbr_load_frames_paced_at_1mpps(self):
        # Departure times of the 24 paced load frames (64 B) on the loadgen
        # wire must average 1 µs apart — the configured CBR rate.  Each
        # frame crosses two wires (loadgen → DuT → sink); its first wire_tx
        # is the loadgen departure.
        first_start = {}
        for line in golden_path("load-latency").read_text().splitlines():
            obj = json.loads(line)
            if obj["kind"] == "wire_tx" and obj["size"] == 64:
                first_start.setdefault(obj["frame"], obj["start"])
        starts = sorted(first_start.values())
        assert len(starts) == 24
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        mean_gap_ps = sum(gaps) / len(gaps)
        assert mean_gap_ps == pytest.approx(1e6, rel=0.02)

    def test_poisson_scenario_covers_process_records(self):
        lines = golden_path("poisson").read_text().splitlines()
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds.count("desc_fetch") == 15
        assert kinds.count("wire_tx") == 15
        assert "proc_advance" in kinds and "proc_finish" in kinds

    def test_poisson_gaps_are_irregular(self):
        times = [json.loads(line)["t"]
                 for line in golden_path("poisson").read_text().splitlines()
                 if json.loads(line)["kind"] == "wire_tx"]
        gaps = {b - a for a, b in zip(times, times[1:])}
        assert len(gaps) > 5  # exponential gaps, not CBR
