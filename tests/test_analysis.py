"""Tests for the analysis helpers: inter-arrival metrics, latency stats,
and the Section 5.6.3 cost estimator."""

import numpy as np
import pytest

from repro.analysis import (
    InterArrivalStats,
    ScriptCost,
    estimate_script,
    measure_interarrival,
    rate_control_table_row,
    summarize_latencies,
)
from repro.analysis.interarrival import (
    TOLERANCES_NS,
    histogram_bins_64ns,
    quantize_timestamps,
)
from repro.analysis.latencystats import mean_and_std, relative_deviation
from repro.units import LINE_RATE_10G_64B_PPS


class TestInterArrival:
    def test_perfect_cbr(self):
        departures = np.arange(1000) * 2000.0
        stats = measure_interarrival(departures, 500e3, "test")
        assert stats.micro_burst_fraction == 0.0
        assert all(stats.within[t] == 1.0 for t in TOLERANCES_NS)

    def test_burst_detection(self):
        # Three packets: one back-to-back pair (672 ns at GbE), one normal.
        departures = np.array([0.0, 672.0, 2672.0])
        stats = measure_interarrival(departures, 500e3, "test")
        assert stats.micro_burst_fraction == pytest.approx(0.5)

    def test_within_buckets(self):
        departures = np.cumsum([0, 2000, 2100, 2500])
        stats = measure_interarrival(np.asarray(departures, float), 500e3)
        assert stats.within[64.0] == pytest.approx(1 / 3)
        assert stats.within[128.0] == pytest.approx(2 / 3)
        assert stats.within[512.0] == pytest.approx(1.0)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            measure_interarrival(np.array([1.0]), 1e6)

    def test_quantization(self):
        times = np.array([0.0, 100.0, 129.0])
        q = quantize_timestamps(times, 64.0)
        assert list(q) == [0.0, 64.0, 128.0]

    def test_quantize_flag(self):
        departures = np.arange(100) * 2000.0 + 17.0
        raw = measure_interarrival(departures, 500e3, quantize=False)
        quant = measure_interarrival(departures, 500e3, quantize=True)
        assert raw.within[64.0] == 1.0
        assert quant.within[64.0] == 1.0  # CBR stays CBR after the grid

    def test_table_row_format(self):
        departures = np.arange(100) * 1000.0
        stats = measure_interarrival(departures, 1e6, "gen")
        row = rate_control_table_row(stats)
        assert row["generator"] == "gen"
        assert row["rate_kpps"] == 1000.0
        assert row["within_64ns_pct"] == 100.0

    def test_format_row_human(self):
        departures = np.arange(10) * 1000.0
        stats = measure_interarrival(departures, 1e6, "gen")
        text = stats.format_row()
        assert "gen" in text and "±64ns" in text

    def test_histogram_bins(self):
        departures = np.cumsum([0] + [2000] * 50 + [2064] * 50)
        stats = measure_interarrival(np.asarray(departures, float), 500e3)
        bins = histogram_bins_64ns(stats)
        assert sum(bins.values()) == pytest.approx(100.0)
        assert len(bins) == 2


class TestLatencyStats:
    def test_summary(self):
        s = summarize_latencies([1000.0, 2000.0, 3000.0, 4000.0], 1e6)
        assert s.q1_ns <= s.median_ns <= s.q3_ns
        assert s.n_samples == 4

    def test_nan_drops_excluded(self):
        s = summarize_latencies([1000.0, float("nan"), 3000.0], 1e6,
                                drop_rate=0.33)
        assert s.n_samples == 2
        assert s.drop_rate == 0.33

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_latencies([float("nan")], 1e6)

    def test_as_us(self):
        s = summarize_latencies([1000.0, 2000.0, 3000.0], 1e6)
        assert s.as_us()[1] == pytest.approx(2.0)

    def test_relative_deviation_zero_for_identical(self):
        a = summarize_latencies([1000.0, 2000.0, 3000.0], 1e6)
        dev = relative_deviation(a, a)
        assert dev == {"q1": 0.0, "median": 0.0, "q3": 0.0}

    def test_relative_deviation_sign(self):
        a = summarize_latencies([2000.0, 2000.0], 1e6)
        b = summarize_latencies([1000.0, 1000.0], 1e6)
        assert relative_deviation(a, b)["median"] == pytest.approx(1.0)

    def test_mean_and_std(self):
        mean, std = mean_and_std([1.0, 2.0, 3.0])
        assert mean == 2.0 and std == 1.0
        assert mean_and_std([5.0]) == (5.0, 0.0)


class TestCostEstimator:
    def test_heavy_script_prediction(self):
        """Section 5.6.3: the heavy script predicts ~10.3-10.5 Mpps at
        2.4 GHz (paper: predicted 10.47 ± 0.18, measured 10.3)."""
        script = ScriptCost(random_fields=8, modify_cachelines=1,
                            offload_ip=True)
        pps = estimate_script(script, 2.4e9)
        assert pps == pytest.approx(10.4e6, rel=0.03)

    def test_baseline_script(self):
        script = ScriptCost(modify_cachelines=1)
        cycles = script.cycles_per_packet(2.4e9)
        assert cycles == pytest.approx(85.1, abs=0.2)

    def test_line_rate_cap(self):
        script = ScriptCost()  # IO only: would exceed line rate
        pps = estimate_script(script, 2.4e9,
                              line_rate_pps=LINE_RATE_10G_64B_PPS)
        assert pps == LINE_RATE_10G_64B_PPS

    def test_udp_offload_implies_no_double_ip_charge(self):
        a = ScriptCost(offload_udp=True).cycles_per_packet(2.4e9)
        b = ScriptCost(offload_udp=True, offload_ip=True).cycles_per_packet(2.4e9)
        assert a == b

    def test_counter_cheaper_than_random(self):
        rand = ScriptCost(random_fields=8).cycles_per_packet(2.4e9)
        ctr = ScriptCost(counter_fields=8).cycles_per_packet(2.4e9)
        assert ctr < rand

    def test_extra_cycles(self):
        base = ScriptCost().cycles_per_packet(2.4e9)
        extra = ScriptCost(extra_cycles=50).cycles_per_packet(2.4e9)
        assert extra == base + 50

    def test_two_cacheline_modification(self):
        one = ScriptCost(modify_cachelines=1).cycles_per_packet(2.4e9)
        two = ScriptCost(modify_cachelines=2).cycles_per_packet(2.4e9)
        assert two > one
