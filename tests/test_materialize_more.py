"""Additional offload-materialization coverage (udp6, icmp, ip-only)."""

import pytest

from repro import MoonGenEnv
from repro.core.tasks import materialize_frame
from repro.packet import PacketData
from repro.packet.checksum import internet_checksum, pseudo_header_sum_v6
from repro.packet.ip4 import IpProtocol


def make_buf(env, size=80):
    pool = env.create_mempool(n_buffers=4, buf_capacity=512)
    bufs = pool.buf_array(1)
    bufs.alloc(size)
    return bufs[0]


class TestOffloadMaterialization:
    def test_udp6_offload(self):
        env = MoonGenEnv()
        buf = make_buf(env)
        buf.pkt.udp6_packet.fill(
            pkt_length=80, ip_src="fe80::1", ip_dst="fe80::2",
            udp_src=5, udp_dst=6,
        )
        buf.offload_l4 = True
        frame = materialize_frame(buf)
        wire = PacketData.wrap(bytearray(frame.data))
        p = wire.udp6_packet
        segment = bytes(wire.data[54:80])
        pseudo = pseudo_header_sum_v6(int(p.ip.src), int(p.ip.dst),
                                      IpProtocol.UDP, len(segment))
        assert internet_checksum(segment, pseudo) in (0, 0xFFFF)
        assert p.udp.checksum != 0

    def test_icmp_offload(self):
        env = MoonGenEnv()
        buf = make_buf(env)
        buf.pkt.icmp_packet.fill(pkt_length=80, ip_src="10.0.0.1",
                                 ip_dst="10.0.0.2", icmp_id=3)
        buf.offload_ip = True
        buf.offload_l4 = True
        frame = materialize_frame(buf)
        wire = PacketData.wrap(bytearray(frame.data))
        assert wire.ip_packet.ip.verify_checksum()
        assert internet_checksum(wire.data[34:80]) == 0

    def test_ip_only_offload_leaves_l4_untouched(self):
        env = MoonGenEnv()
        buf = make_buf(env)
        buf.pkt.udp_packet.fill(pkt_length=80, ip_src="10.0.0.1",
                                ip_dst="10.0.0.2")
        buf.offload_ip = True
        frame = materialize_frame(buf)
        wire = PacketData.wrap(bytearray(frame.data))
        assert wire.ip_packet.ip.verify_checksum()
        assert wire.udp_packet.udp.checksum == 0

    def test_non_ip_frame_with_offload_flags_is_untouched(self):
        """Offload bits on a PTP frame: the NIC has nothing to checksum."""
        env = MoonGenEnv()
        buf = make_buf(env, size=60)
        buf.pkt.ptp_packet.fill()
        buf.offload_ip = True
        buf.offload_l4 = True
        frame = materialize_frame(buf)
        assert frame.data == buf.pkt.bytes()

    def test_no_offload_keeps_zero_checksums(self):
        env = MoonGenEnv()
        buf = make_buf(env)
        buf.pkt.udp_packet.fill(pkt_length=80)
        frame = materialize_frame(buf)
        wire = PacketData.wrap(bytearray(frame.data))
        assert wire.udp_packet.udp.checksum == 0
        assert wire.ip_packet.ip.checksum == 0
