"""Test package: registers the shared Hypothesis profiles on import.

Importing :mod:`tests._hypothesis_profiles` here guarantees the ``dev``/
``ci`` profiles exist (and the one named by ``HYPOTHESIS_PROFILE`` is
loaded) before any test module builds its ``@settings`` decorators.
"""

import tests._hypothesis_profiles  # noqa: F401
