"""Tests for the remaining op types and task-scheduler edge cases."""

import pytest

from repro import MoonGenEnv
from repro.core.ops import BarrierOp, CyclesOp, SleepOp
from repro.nicsim.eventloop import Signal


class TestBarrierOp:
    def test_waits_for_all_signals(self):
        env = MoonGenEnv()
        a, b = Signal(), Signal()
        done = []

        def waiter(env):
            yield BarrierOp(signals=[a, b])
            done.append(env.now_ns)

        env.launch(waiter, env)
        env.loop.schedule(10_000, lambda: a.trigger())
        env.loop.schedule(50_000, lambda: b.trigger())
        env.wait_for_slaves()
        assert done == [pytest.approx(50.0)]

    def test_empty_barrier_is_noop(self):
        env = MoonGenEnv()

        def waiter(env):
            yield BarrierOp()
            return "through"

        task = env.launch(waiter, env)
        env.wait_for_slaves()
        assert task.result == "through"

    def test_task_rendezvous(self):
        """Two tasks synchronize at a barrier via done signals."""
        env = MoonGenEnv()
        order = []

        def fast(env):
            yield env.sleep_us(1)
            order.append("fast")

        def slow(env):
            yield env.sleep_us(100)
            order.append("slow")

        fast_task = env.launch(fast, env)
        slow_task = env.launch(slow, env)

        def joiner(env):
            yield BarrierOp(signals=[
                fast_task.process.done_signal,
                slow_task.process.done_signal,
            ])
            order.append("joined")

        env.launch(joiner, env)
        env.wait_for_slaves()
        assert order == ["fast", "slow", "joined"]


class TestOpDataclasses:
    def test_sleep_op_fields(self):
        assert SleepOp(100.0).duration_ns == 100.0

    def test_cycles_op_fields(self):
        assert CyclesOp(76.0).cycles == 76.0

    def test_send_op_extra_cycles_default(self):
        env = MoonGenEnv()
        tx = env.config_device(0, tx_queues=1)
        pool = env.create_mempool()
        bufs = pool.buf_array(1)
        op = tx.get_tx_queue(0).send(bufs)
        assert op.extra_cycles == 0.0


class TestSchedulerEdgeCases:
    def test_task_returning_value_via_stopiteration(self):
        env = MoonGenEnv()

        def slave(env):
            yield env.sleep_ns(1)
            return {"answer": 42}

        task = env.launch(slave, env)
        env.wait_for_slaves()
        assert task.result == {"answer": 42}

    def test_generator_exit_propagates_on_kill(self):
        env = MoonGenEnv()
        cleaned = []

        def slave(env):
            try:
                while True:
                    yield env.sleep_ms(10)
            finally:
                cleaned.append(True)

        task = env.launch(slave, env)
        env.run_for(1_000_000)
        task.kill()
        assert cleaned == [True]

    def test_many_tasks_time_isolated(self):
        """Each task's core advances independently of the others."""
        env = MoonGenEnv()
        finish = {}

        def slave(env, name, cycles):
            yield env.charge_cycles(cycles)
            finish[name] = env.now_ns

        env.launch(slave, env, "short", 2400)
        env.launch(slave, env, "long", 240_000)
        env.wait_for_slaves()
        assert finish["short"] == pytest.approx(1000.0)   # 1 µs at 2.4 GHz
        assert finish["long"] == pytest.approx(100_000.0)
