"""Tests for the simulated NIC ports: rings, MAC, rate control, timestamps."""

import pytest

from repro import units
from repro.errors import ConfigurationError, QueueError
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Wire
from repro.nicsim.nic import (
    CHIP_82580,
    CHIP_82599,
    CHIP_X540,
    CHIP_XL710,
    NicCard,
    NicPort,
    SimFrame,
)
from repro.packet import PacketData


def udp_frame(size=60, dst_port=42):
    pkt = PacketData(size)
    pkt.udp_packet.fill(pkt_length=size, udp_dst=dst_port)
    return SimFrame(pkt.bytes())


def ptp_frame(seq=1):
    pkt = PacketData(60)
    pkt.ptp_packet.fill(ptp_sequence=seq)
    return SimFrame(pkt.bytes())


def udp_ptp_frame(size=76, seq=1):
    pkt = PacketData(size)
    pkt.udp_ptp_packet.fill(pkt_length=size, ptp_sequence=seq)
    return SimFrame(pkt.bytes())


class TestSimFrame:
    def test_size_includes_fcs(self):
        frame = SimFrame(b"\x00" * 60)
        assert frame.size == 64
        assert frame.wire_size == 84

    def test_is_ptp_ethernet(self):
        assert ptp_frame().is_ptp()

    def test_is_ptp_udp(self):
        assert udp_ptp_frame(size=76).is_ptp()  # 80 B with FCS

    def test_udp_ptp_below_80_bytes_refused(self):
        # Section 6.4: UDP PTP packets below 80 B are not timestamped.
        assert not udp_ptp_frame(size=74).is_ptp()

    def test_plain_udp_not_ptp(self):
        assert not udp_frame().is_ptp()

    def test_wrong_ptp_version_not_matched(self):
        pkt = PacketData(60)
        p = pkt.ptp_packet
        p.fill()
        p.ptp.version = 1
        assert not SimFrame(pkt.bytes()).is_ptp()

    def test_ptp_sequence_ethernet(self):
        assert ptp_frame(seq=777).ptp_sequence() == 777

    def test_ptp_sequence_udp(self):
        assert udp_ptp_frame(seq=333).ptp_sequence() == 333

    def test_sequence_of_non_ptp(self):
        frame = SimFrame(b"\x00" * 60)
        assert frame.ptp_sequence() is None

    def test_frames_get_unique_seq(self):
        a, b = SimFrame(b"\x00" * 60), SimFrame(b"\x00" * 60)
        assert a.seq != b.seq


class TestChips:
    def test_queue_counts(self):
        # Section 3.3: 128 queues on the X540 and 82599.
        assert CHIP_X540.queues == 128
        assert CHIP_82599.queues == 128

    def test_x540_fifo_size(self):
        # Section 3.2: the 160 kB transmit buffer conceals pause times.
        assert CHIP_X540.tx_fifo_bytes == 160 * 1024

    def test_82580_timestamps_all(self):
        assert CHIP_82580.timestamp_all_rx
        assert CHIP_82580.speed_bps == units.SPEED_1G

    def test_82599_latch_grid(self):
        assert CHIP_82599.latch_ticks == 2  # 12.8 ns latch (Section 6.1)
        assert CHIP_X540.latch_ticks == 1

    def test_xl710_limits(self):
        assert not CHIP_XL710.hw_timestamping  # Section 3.3
        assert CHIP_XL710.card_max_pps == 42e6  # Section 5.4
        assert CHIP_XL710.card_max_bps == 50e9

    def test_queue_limit_enforced(self):
        with pytest.raises(ConfigurationError):
            NicPort(EventLoop(), chip=CHIP_X540, n_tx_queues=129)


class TestTxPath:
    def make_port(self, **kwargs):
        loop = EventLoop()
        port = NicPort(loop, chip=CHIP_X540, **kwargs)
        wire = Wire(loop, port.speed_bps)
        port.attach_wire(wire)
        return loop, port, wire

    def test_line_rate_emerges(self):
        loop, port, wire = self.make_port()
        queue = port.get_tx_queue(0)
        frames = [udp_frame() for _ in range(100)]
        assert queue.enqueue(frames) == 100
        loop.run()
        assert port.tx_packets == 100
        pps = 100 / (loop.now_ps / 1e12)
        assert pps == pytest.approx(units.LINE_RATE_10G_64B_PPS, rel=0.02)

    def test_ring_capacity(self):
        loop, port, wire = self.make_port()
        queue = port.get_tx_queue(0)
        frames = [udp_frame() for _ in range(600)]
        accepted = queue.enqueue(frames)
        # One descriptor is fetched synchronously by the MAC kick.
        assert 512 <= accepted <= 513

    def test_space_signal_on_fetch(self):
        loop, port, wire = self.make_port()
        queue = port.get_tx_queue(0)
        woke = []
        queue.space_signal.wait(lambda v: woke.append(loop.now_ps))
        queue.enqueue([udp_frame() for _ in range(514)])
        loop.run()
        assert woke  # the NIC's descriptor fetch freed ring slots

    def test_round_robin_across_queues(self):
        loop = EventLoop()
        port = NicPort(loop, chip=CHIP_X540, n_tx_queues=2)
        port.attach_wire(Wire(loop, port.speed_bps))
        order = []
        port.tx_observers.append(lambda f, t: order.append(f.meta["q"]))
        # Fill both rings before the NIC starts fetching so the descriptor
        # DMA sees both queues pending (enqueue() would kick immediately).
        for q in (0, 1):
            for _ in range(10):
                f = udp_frame()
                f.meta["q"] = q
                port.tx_queues[q].ring.append(f)
        port._mac_kick()
        loop.run()
        # Both queues interleave rather than one starving the other.
        assert order[:4].count(0) == 2 and order[:4].count(1) == 2

    def test_recycle_hook_called(self):
        loop, port, wire = self.make_port()
        recycled = []
        frame = udp_frame()
        frame.meta["recycle"] = lambda: recycled.append(True)
        port.get_tx_queue(0).enqueue([frame])
        loop.run()
        assert recycled == [True]

    def test_unknown_queue(self):
        loop, port, wire = self.make_port()
        with pytest.raises(QueueError):
            port.get_tx_queue(5)

    def test_observers_see_departures(self):
        loop, port, wire = self.make_port()
        times = []
        port.tx_observers.append(lambda f, t: times.append(t))
        port.get_tx_queue(0).enqueue([udp_frame() for _ in range(5)])
        loop.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == 84 * 800 for g in gaps)  # back-to-back


class TestHardwareRateControl:
    def test_rate_limiter_spacing(self):
        loop = EventLoop()
        port = NicPort(loop, chip=CHIP_X540)
        port.attach_wire(Wire(loop, port.speed_bps))
        queue = port.get_tx_queue(0)
        queue.set_rate_pps(1e6, 64)  # 1 Mpps CBR
        times = []
        port.tx_observers.append(lambda f, t: times.append(t))
        queue.enqueue([udp_frame() for _ in range(50)])
        loop.run()
        gaps_ns = [(b - a) / 1000 for a, b in zip(times, times[1:])]
        avg = sum(gaps_ns) / len(gaps_ns)
        assert avg == pytest.approx(1000.0, rel=0.01)
        # CBR, not bursts: every gap is near the target.
        assert all(500 < g < 1500 for g in gaps_ns)

    def test_rate_zero_disables(self):
        loop = EventLoop()
        port = NicPort(loop, chip=CHIP_X540)
        queue = port.get_tx_queue(0)
        queue.set_rate(0)
        assert queue.rate_bps == 0

    def test_no_rate_control_on_82580(self):
        loop = EventLoop()
        port = NicPort(loop, chip=CHIP_82580)
        with pytest.raises(ConfigurationError):
            port.get_tx_queue(0).set_rate(100)

    def test_negative_rate_rejected(self):
        loop = EventLoop()
        port = NicPort(loop, chip=CHIP_X540)
        with pytest.raises(ConfigurationError):
            port.get_tx_queue(0).set_rate(-5)

    def test_average_rate_exact_with_dithering(self):
        """Quantization dithers but the long-run average stays exact."""
        loop = EventLoop()
        port = NicPort(loop, chip=CHIP_X540)
        port.attach_wire(Wire(loop, port.speed_bps))
        queue = port.get_tx_queue(0)
        queue.set_rate_pps(3e6, 64)
        times = []
        port.tx_observers.append(lambda f, t: times.append(t))
        queue.enqueue([udp_frame() for _ in range(400)])
        loop.run()
        duration_s = (times[-1] - times[0]) / 1e12
        assert 399 / duration_s == pytest.approx(3e6, rel=0.005)


class TestRxPath:
    def wire_pair(self):
        loop = EventLoop()
        tx = NicPort(loop, chip=CHIP_X540, port_id=0)
        rx = NicPort(loop, chip=CHIP_X540, port_id=1)
        wire = Wire(loop, tx.speed_bps)
        wire.connect(rx.receive)
        tx.attach_wire(wire)
        return loop, tx, rx

    def test_delivery_to_ring(self):
        loop, tx, rx = self.wire_pair()
        tx.get_tx_queue(0).enqueue([udp_frame() for _ in range(10)])
        loop.run()
        assert rx.rx_packets == 10
        assert len(rx.rx_queues[0].ring) == 10

    def test_bad_crc_dropped_before_queue(self):
        """Section 8: invalid frames only bump an error counter."""
        loop, tx, rx = self.wire_pair()
        bad = udp_frame()
        bad.fcs_ok = False
        tx.get_tx_queue(0).enqueue([bad, udp_frame()])
        loop.run()
        assert rx.rx_crc_errors == 1
        assert rx.rx_packets == 1
        assert len(rx.rx_queues[0].ring) == 1

    def test_ring_overflow_counts_missed(self):
        loop, tx, rx = self.wire_pair()
        rx.rx_queues[0].ring_size = 5
        tx.get_tx_queue(0).enqueue([udp_frame() for _ in range(10)])
        loop.run()
        assert rx.rx_missed == 5
        assert rx.rx_queues[0].rx_packets == 5

    def test_rx_filter_dispatch(self):
        loop = EventLoop()
        tx = NicPort(loop, chip=CHIP_X540, port_id=0)
        rx = NicPort(loop, chip=CHIP_X540, port_id=1, n_rx_queues=2)
        wire = Wire(loop, tx.speed_bps)
        wire.connect(rx.receive)
        tx.attach_wire(wire)
        rx.set_rx_filter(lambda frame: frame.data[37] & 1)  # UDP dst port LSB
        tx.get_tx_queue(0).enqueue([udp_frame(dst_port=2), udp_frame(dst_port=3)])
        loop.run()
        assert rx.rx_queues[0].rx_packets == 1
        assert rx.rx_queues[1].rx_packets == 1

    def test_fetch_drains_ring(self):
        loop, tx, rx = self.wire_pair()
        tx.get_tx_queue(0).enqueue([udp_frame() for _ in range(10)])
        loop.run()
        got = rx.rx_queues[0].fetch(6)
        assert len(got) == 6
        assert len(rx.rx_queues[0].ring) == 4


class TestTimestampRegisters:
    def wire_pair(self, chip=CHIP_X540):
        loop = EventLoop()
        tx = NicPort(loop, chip=chip, port_id=0)
        rx = NicPort(loop, chip=chip, port_id=1)
        wire = Wire(loop, tx.speed_bps)
        wire.connect(rx.receive)
        tx.attach_wire(wire)
        return loop, tx, rx

    def send_probe(self, loop, tx, seq=1):
        frame = ptp_frame(seq=seq)
        frame.meta["timestamp"] = True
        tx.get_tx_queue(0).enqueue([frame])
        loop.run()

    def test_tx_timestamp_latched(self):
        loop, tx, rx = self.wire_pair()
        self.send_probe(loop, tx, seq=5)
        stamp = tx.read_tx_timestamp()
        assert stamp is not None
        value, seq = stamp
        assert seq == 5

    def test_register_cleared_on_read(self):
        loop, tx, rx = self.wire_pair()
        self.send_probe(loop, tx)
        assert tx.read_tx_timestamp() is not None
        assert tx.read_tx_timestamp() is None

    def test_only_one_in_flight(self):
        """Section 6: the register must be read back before the next stamp."""
        loop, tx, rx = self.wire_pair()
        frames = []
        for seq in (1, 2):
            f = ptp_frame(seq=seq)
            f.meta["timestamp"] = True
            frames.append(f)
        tx.get_tx_queue(0).enqueue(frames)
        loop.run()
        value, seq = tx.read_tx_timestamp()
        assert seq == 1  # the second stamp was missed
        assert tx.timestamp_missed >= 1

    def test_rx_timestamp_for_ptp(self):
        loop, tx, rx = self.wire_pair()
        self.send_probe(loop, tx, seq=9)
        stamp = rx.read_rx_timestamp()
        assert stamp is not None
        assert stamp[1] == 9

    def test_rx_ignores_plain_udp(self):
        loop, tx, rx = self.wire_pair()
        tx.get_tx_queue(0).enqueue([udp_frame()])
        loop.run()
        assert rx.read_rx_timestamp() is None

    def test_non_ptp_never_latches_tx(self):
        loop, tx, rx = self.wire_pair()
        frame = udp_frame()
        frame.meta["timestamp"] = True  # requested, but not a PTP packet
        tx.get_tx_queue(0).enqueue([frame])
        loop.run()
        assert tx.read_tx_timestamp() is None

    def test_82580_stamps_every_packet(self):
        loop, tx, rx = self.wire_pair(chip=CHIP_82580)
        tx.get_tx_queue(0).enqueue([udp_frame() for _ in range(3)])
        loop.run()
        frames = rx.rx_queues[0].fetch(10)
        assert all("rx_timestamp_ns" in f.meta for f in frames)

    def test_no_timestamps_on_xl710(self):
        loop = EventLoop()
        tx = NicPort(loop, chip=CHIP_XL710, port_id=0)
        rx = NicPort(loop, chip=CHIP_XL710, port_id=1)
        wire = Wire(loop, units.SPEED_40G)
        wire.connect(rx.receive)
        tx.attach_wire(wire)
        frame = ptp_frame()
        frame.meta["timestamp"] = True
        tx.get_tx_queue(0).enqueue([frame])
        loop.run()
        assert tx.read_tx_timestamp() is None
        assert rx.read_rx_timestamp() is None


class TestXl710Caps:
    def test_single_port_packet_rate_capped(self):
        """Section 5.4: the XL710 cannot do line rate with small packets."""
        loop = EventLoop()
        card = NicCard(CHIP_XL710)
        port = NicPort(loop, chip=CHIP_XL710, card=card)
        port.attach_wire(Wire(loop, units.SPEED_40G))
        port.get_tx_queue(0).enqueue([udp_frame() for _ in range(500)])
        loop.run()
        pps = 500 / (loop.now_ps / 1e12)
        line = units.line_rate_pps(64, units.SPEED_40G)
        assert pps < line  # below 59.5 Mpps line rate
        assert pps == pytest.approx(CHIP_XL710.max_pps, rel=0.02)

    def test_dual_port_aggregate_bandwidth(self):
        """Dual-port XL710 large packets cap at ~50 Gbit/s aggregate."""
        loop = EventLoop()
        card = NicCard(CHIP_XL710)
        ports = [NicPort(loop, chip=CHIP_XL710, port_id=i, card=card)
                 for i in (0, 1)]
        for port in ports:
            port.attach_wire(Wire(loop, units.SPEED_40G))
            big = [SimFrame(b"\x00" * 1514) for _ in range(200)]
            port.get_tx_queue(0).enqueue(big)
        loop.run()
        total_bits = sum(p.tx_bytes for p in ports) * 8
        gbps = total_bits / (loop.now_ps / 1e12) / 1e9
        assert gbps == pytest.approx(50.0, rel=0.05)
        assert gbps < 2 * 40.0

    def test_x540_unaffected_by_card_model(self):
        loop = EventLoop()
        port = NicPort(loop, chip=CHIP_X540)
        frame = udp_frame()
        assert port.card.effective_frame_time_ps(frame, port.speed_bps) == \
            units.frame_time_ps(64, units.SPEED_10G)
