"""Tests for the LoadLatencyExperiment orchestration helper."""

import pytest

from repro import MoonGenEnv, PoissonPattern
from repro.core.latency import LoadLatencyExperiment
from repro.dut import OvsForwarder
from repro.errors import ConfigurationError


def build(mode="hardware", pattern=None):
    env = MoonGenEnv(seed=8)
    tx = env.config_device(0, tx_queues=2)
    rx = env.config_device(1, rx_queues=1)
    dut = OvsForwarder(env.loop)
    env.connect_to_sink(tx, dut.ingress)
    dut.connect_output(env.wire_to_device(rx))
    exp = LoadLatencyExperiment(
        env, tx, rx, mode=mode, pattern=pattern, n_probes=50,
        probe_interval_ns=100_000.0,
    )
    return env, exp, dut


class TestConfigValidation:
    def test_rejects_unknown_mode(self):
        env = MoonGenEnv()
        tx = env.config_device(0, tx_queues=2)
        rx = env.config_device(1, rx_queues=1)
        with pytest.raises(ConfigurationError):
            LoadLatencyExperiment(env, tx, rx, mode="psychic")

    def test_crc_mode_needs_pattern(self):
        env = MoonGenEnv()
        tx = env.config_device(0, tx_queues=2)
        rx = env.config_device(1, rx_queues=1)
        with pytest.raises(ConfigurationError):
            LoadLatencyExperiment(env, tx, rx, mode="crc")

    def test_needs_two_tx_queues(self):
        env = MoonGenEnv()
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        with pytest.raises(ConfigurationError):
            LoadLatencyExperiment(env, tx, rx)


class TestHardwareMode:
    def test_collects_load_and_latency(self):
        env, exp, dut = build()
        result = exp.run(0.5e6, duration_ns=8_000_000,
                         dut_crc_counter=lambda: dut.rx_crc_errors)
        # Load within 10 % of the configured CBR rate (+ probe packets).
        assert result.achieved_pps == pytest.approx(0.5e6, rel=0.1)
        assert len(result.latency) > 30
        assert result.latency.median() > 15_000  # includes DuT pipeline
        assert result.dut_crc_drops == 0  # no fillers in hardware mode

    def test_result_counts_consistent(self):
        env, exp, dut = build()
        result = exp.run(0.3e6, duration_ns=5_000_000)
        assert result.tx_packets >= dut.forwarded
        assert result.rx_packets <= result.tx_packets


class TestCrcMode:
    def test_poisson_through_dut(self):
        env, exp, dut = build(mode="crc", pattern=PoissonPattern(0.5e6, seed=3))
        result = exp.run(0.5e6, duration_ns=8_000_000,
                         dut_crc_counter=lambda: dut.rx_crc_errors)
        assert result.dut_crc_drops > 0  # fillers were dropped in hardware
        assert dut.forwarded > 0
        # Probes queue behind the CRC stream in the shared on-chip FIFO
        # (~170 µs each), so the probe rate is below the configured
        # interval — the hardware timestamps keep the samples accurate.
        assert len(result.latency) > 20

    def test_dut_forwards_only_valid(self):
        env, exp, dut = build(mode="crc", pattern=PoissonPattern(0.4e6, seed=5))
        result = exp.run(0.4e6, duration_ns=6_000_000)
        # Everything the DuT forwarded reached the rx side (plus probes).
        assert dut.rx_dropped == 0
        assert dut.forwarded == result.rx_packets
