"""Tests for PHY framing and wire impairments."""

import numpy as np
import pytest

from repro import MoonGenEnv, units
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Wire
from repro.nicsim.nic import CHIP_X540, NicPort, SimFrame


class TestPhyFraming:
    """Section 8.4: 10GBASE-T ships 3200-bit PHY frames, so packets closer
    than one PHY frame arrive as a burst."""

    def test_close_packets_coalesce(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G, phy_frame_bits=3200)
        arrivals = []
        wire.connect(lambda f, t: arrivals.append(t))
        # Two back-to-back 64 B frames: 67.2 ns apart on the wire, but the
        # PHY frame is 320 ns — they arrive in adjacent deliveries.
        wire.transmit("a", 64)
        wire.transmit("b", 64)
        loop.run()
        gap_ns = (arrivals[1] - arrivals[0]) / 1000
        assert gap_ns < 1.0  # delivered as a burst

    def test_distant_packets_unaffected(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G, phy_frame_bits=3200)
        arrivals = []
        wire.connect(lambda f, t: arrivals.append(t))
        wire.transmit("a", 64, start_ps=0)
        wire.transmit("b", 64, start_ps=2_000_000)  # 2 µs later
        loop.run()
        gap_ns = (arrivals[1] - arrivals[0]) / 1000
        assert gap_ns == pytest.approx(2000.0, abs=330.0)

    def test_arrivals_quantized_to_phy_grid(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G, phy_frame_bits=3200)
        arrivals = []
        wire.connect(lambda f, t: arrivals.append(t))
        for i in range(10):
            wire.transmit(i, 64, start_ps=i * 1_000_000)
        loop.run()
        phy_ps = round(3200 * 1e12 / units.SPEED_10G)
        for t in arrivals:
            assert t % phy_ps == 0

    def test_phy_framing_hides_sub_frame_gaps(self):
        """Two packets 60 ns apart and two back-to-back are identical at
        the receiver — the paper's argument for why unrepresentable CRC
        gaps do not matter on 10GBASE-T."""
        def arrival_gap(spacing_ps):
            loop = EventLoop()
            wire = Wire(loop, units.SPEED_10G, phy_frame_bits=3200)
            arrivals = []
            wire.connect(lambda f, t: arrivals.append(t))
            wire.transmit("a", 64, start_ps=0)
            wire.transmit("b", 64, start_ps=spacing_ps)
            loop.run()
            return arrivals[1] - arrivals[0]

        back_to_back = arrival_gap(0)
        small_gap = arrival_gap(60_000)  # 60 ns software gap
        assert back_to_back == small_gap


class TestWireImpairments:
    def test_corruption_breaks_fcs(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G, corrupt_rate=1.0, seed=1)
        got = []
        wire.connect(lambda f, t: got.append(f))
        wire.transmit(SimFrame(b"\x00" * 60), 64)
        loop.run()
        assert not got[0].fcs_ok
        assert wire.corrupted == 1

    def test_corrupted_frames_counted_by_nic(self):
        """Bit errors show up in the receiver's CRC error counter."""
        env = MoonGenEnv(seed=2)
        loop = env.loop
        rx = NicPort(loop, chip=CHIP_X540, port_id=1)
        wire = Wire(loop, units.SPEED_10G, corrupt_rate=0.3, seed=5)
        wire.connect(rx.receive)
        for _ in range(200):
            wire.transmit(SimFrame(b"\x00" * 60), 64)
        loop.run()
        assert rx.rx_crc_errors == wire.corrupted
        assert rx.rx_packets == 200 - wire.corrupted
        assert 30 < wire.corrupted < 90  # ~30 %

    def test_zero_rate_never_corrupts(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G, corrupt_rate=0.0)
        got = []
        wire.connect(lambda f, t: got.append(f))
        for _ in range(50):
            wire.transmit(SimFrame(b"\x00" * 60), 64)
        loop.run()
        assert all(f.fcs_ok for f in got)
        assert wire.corrupted == 0

    def test_latency_measurement_survives_lost_probes(self):
        """Failure injection: a lossy wire loses some timestamped probes;
        the Timestamper accounts them instead of hanging."""
        from repro import Timestamper
        env = MoonGenEnv(seed=6)
        a = env.config_device(0, tx_queues=1, rx_queues=1)
        b = env.config_device(1, rx_queues=1, tx_queues=1)
        wire = Wire(env.loop, a.port.speed_bps, corrupt_rate=0.4, seed=9)
        wire.connect(b.port.receive)
        a.port.attach_wire(wire)
        ts = Timestamper(env, a.get_tx_queue(0), b, seed=2)
        env.launch(
            lambda: ts.probe_task(50, 10_000.0, timeout_ns=200_000.0)
        )
        env.wait_for_slaves(duration_ns=30_000_000)
        assert ts.lost_probes > 5
        assert len(ts.histogram) + ts.lost_probes == 50
        assert len(ts.histogram) > 10
