"""Tests for pcap reading/writing and trace replay."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.errors import PacketError
from repro.packet.pcap import (
    LINKTYPE_ETHERNET,
    MAGIC_NS,
    MAGIC_US,
    PcapReader,
    PcapRecord,
    PcapWriter,
    trace_gaps_ns,
)


def roundtrip(records, nanosecond=True):
    stream = io.BytesIO()
    writer = PcapWriter(stream, nanosecond=nanosecond)
    writer.write_all(records)
    stream.seek(0)
    return PcapReader(stream).read_all()


class TestRoundtrip:
    def test_single_packet(self):
        records = [PcapRecord(123_456_789, b"\x01" * 60)]
        assert roundtrip(records) == records

    def test_many_packets(self):
        records = [
            PcapRecord(i * 67_200, bytes([i % 256]) * (60 + i % 32))
            for i in range(100)
        ]
        assert roundtrip(records) == records

    def test_microsecond_precision_truncates(self):
        records = [PcapRecord(1_234, b"x" * 60)]
        out = roundtrip(records, nanosecond=False)
        assert out[0].timestamp_ns == 1_000  # µs resolution

    def test_timestamps_beyond_one_second(self):
        records = [PcapRecord(3_700_000_000_123, b"y" * 64)]
        assert roundtrip(records) == records

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=10 ** 15),
                  st.binary(min_size=14, max_size=256)),
        min_size=0, max_size=30,
    ))
    def test_roundtrip_property(self, items):
        records = [PcapRecord(ts, data) for ts, data in items]
        assert roundtrip(records) == records


class TestHeaders:
    def test_magic_ns(self):
        stream = io.BytesIO()
        PcapWriter(stream, nanosecond=True)
        assert int.from_bytes(stream.getvalue()[:4], "little") == MAGIC_NS

    def test_magic_us(self):
        stream = io.BytesIO()
        PcapWriter(stream, nanosecond=False)
        assert int.from_bytes(stream.getvalue()[:4], "little") == MAGIC_US

    def test_version(self):
        stream = io.BytesIO()
        PcapWriter(stream)
        stream.seek(0)
        assert PcapReader(stream).version == (2, 4)

    def test_rejects_bad_magic(self):
        with pytest.raises(PacketError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_rejects_truncated_header(self):
        with pytest.raises(PacketError):
            PcapReader(io.BytesIO(b"\x00" * 10))

    def test_rejects_non_ethernet(self):
        stream = io.BytesIO()
        PcapWriter(stream)
        raw = bytearray(stream.getvalue())
        raw[20:24] = (101).to_bytes(4, "little")  # raw IP link type
        with pytest.raises(PacketError):
            PcapReader(io.BytesIO(bytes(raw)))

    def test_truncated_record_detected(self):
        stream = io.BytesIO()
        writer = PcapWriter(stream)
        writer.write(0, b"z" * 60)
        data = stream.getvalue()[:-10]
        reader = PcapReader(io.BytesIO(data))
        with pytest.raises(PacketError):
            list(reader)


class TestTraceGaps:
    def test_gaps(self):
        records = [PcapRecord(t, b"") for t in (0, 1000, 3000)]
        assert trace_gaps_ns(records) == [1000.0, 2000.0]

    def test_needs_two(self):
        with pytest.raises(PacketError):
            trace_gaps_ns([PcapRecord(0, b"")])

    def test_rejects_non_monotonic(self):
        records = [PcapRecord(t, b"") for t in (0, 1000, 500)]
        with pytest.raises(PacketError):
            trace_gaps_ns(records)


class TestReplayIntegration:
    def test_trace_replay_through_gap_filler(self):
        """A captured trace replays with its original timing (Section 2's
        pcap-replay use case, but with CRC-gap precision)."""
        import numpy as np
        from repro.core.ratecontrol import CustomGapPattern, GapFiller

        gaps = [1000.0, 2500.0, 800.0, 4000.0] * 50
        records = [PcapRecord(0, b"\x00" * 60)]
        t = 0
        for g in gaps:
            t += g
            records.append(PcapRecord(round(t), b"\x00" * 60))

        pattern = CustomGapPattern(trace_gaps_ns(records))
        plan = GapFiller().plan(pattern.gaps_ns(len(gaps)))
        assert np.abs(plan.actual_gaps_ns - np.array(gaps)).max() <= 1.0

    def test_capture_and_rewrite(self):
        """Simulated traffic can be captured to pcap and read back."""
        from repro import MoonGenEnv
        from repro.packet.pcap import capture_rx_queue

        env = MoonGenEnv(seed=3)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)

        def sender(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60, udp_dst=5001))
            bufs = mem.buf_array(8)
            bufs.alloc(60)
            yield queue.send(bufs)

        env.launch(sender, env, tx.get_tx_queue(0))
        env.wait_for_slaves()
        records = capture_rx_queue(rx.get_rx_queue(0), 100)
        assert len(records) == 8
        out = roundtrip(records)
        assert out == records
        # Timestamps reflect line-rate spacing (67.2 ns apart).
        deltas = [b.timestamp_ns - a.timestamp_ns
                  for a, b in zip(records, records[1:])]
        assert all(66 <= d <= 69 for d in deltas)
