"""Tests for wire-time arithmetic (repro.units)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestWireLength:
    def test_min_frame_wire_length(self):
        # 64 B frame + 20 B overhead = 84 B on the wire.
        assert units.wire_length(64) == 84

    def test_overhead_constant(self):
        assert units.WIRE_OVERHEAD == 20
        assert units.PREAMBLE_SIZE + units.SFD_SIZE + units.INTER_FRAME_GAP == 20

    @given(st.integers(min_value=0, max_value=10_000))
    def test_wire_length_monotone(self, size):
        assert units.wire_length(size + 1) == units.wire_length(size) + 1


class TestFrameTime:
    def test_64b_at_10g_is_67_2ns(self):
        assert units.frame_time_ns(64, units.SPEED_10G) == pytest.approx(67.2)

    def test_64b_at_1g_is_672ns(self):
        # The black-arrow burst spacing of Figure 8.
        assert units.frame_time_ns(64, units.SPEED_1G) == pytest.approx(672.0)

    def test_frame_time_ps_is_exact_integer(self):
        # 800 ps per byte at 10 GbE: exact integer arithmetic.
        assert units.frame_time_ps(64, units.SPEED_10G) == 84 * 800

    def test_byte_time(self):
        assert units.byte_time_ps(units.SPEED_10G) == pytest.approx(800.0)
        assert units.byte_time_ps(units.SPEED_1G) == pytest.approx(8000.0)

    @given(st.integers(min_value=33, max_value=1538),
           st.sampled_from([units.SPEED_1G, units.SPEED_10G, units.SPEED_40G]))
    def test_frame_time_positive(self, size, speed):
        assert units.frame_time_ps(size, speed) > 0


class TestLineRate:
    def test_10g_line_rate_64b(self):
        # The paper's headline: 14.88 Mpps.
        assert units.line_rate_pps(64, units.SPEED_10G) == pytest.approx(
            14.88e6, rel=1e-3
        )

    def test_line_rate_constant_matches(self):
        assert units.LINE_RATE_10G_64B_PPS == pytest.approx(
            units.line_rate_pps(64, units.SPEED_10G), abs=1.0
        )

    def test_larger_packets_lower_pps(self):
        assert units.line_rate_pps(1518, units.SPEED_10G) < units.line_rate_pps(
            64, units.SPEED_10G
        )

    def test_120gbe_aggregate(self):
        # Twelve 10 GbE ports: 178.5 Mpps (Section 5.5 / Figure 4).
        assert 12 * units.line_rate_pps(64, units.SPEED_10G) == pytest.approx(
            178.5e6, rel=1e-2
        )


class TestConversions:
    def test_pps_gap_roundtrip(self):
        assert units.pps_to_gap_ns(1e6) == pytest.approx(1000.0)

    def test_pps_to_gap_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.pps_to_gap_ns(0)

    def test_mpps(self):
        assert units.mpps(14.88) == pytest.approx(14.88e6)
        assert units.to_mpps(14.88e6) == pytest.approx(14.88)

    def test_gbit(self):
        assert units.gbit(10) == units.SPEED_10G
        assert units.to_gbit(units.SPEED_40G) == pytest.approx(40.0)

    def test_throughput(self):
        # 14.88 Mpps of 64 B frames = 7.62 Gbit/s of frame data.
        assert units.throughput_gbps(14.88e6, 64) == pytest.approx(7.62, rel=1e-2)

    def test_wire_rate_is_full_link(self):
        pps = units.line_rate_pps(64, units.SPEED_10G)
        assert units.wire_rate_gbps(pps, 64) == pytest.approx(10.0, rel=1e-6)

    @given(st.floats(min_value=1.0, max_value=1e9))
    def test_gap_positive(self, pps):
        assert units.pps_to_gap_ns(pps) > 0
