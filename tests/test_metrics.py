"""Tests for the ``repro.metrics`` subsystem.

Covers the registry primitives (counter/gauge/rate/log2-histogram), the
exporters (JSONL, CSV, Prometheus text — with a committed golden file),
the sim-time snapshotter and its end-of-run edge cases, the run-provenance
manifest, the event-loop self-profiler, and the hypothesis mirror
property: a source-backed counter can never drift from the device
register it reads.
"""

import io
import json
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro import MoonGenEnv
from repro.errors import ConfigurationError
from repro.metrics import (
    Counter,
    Log2Histogram,
    MetricsRegistry,
    RunManifest,
    TimeSeries,
    canonical_json,
    categorize,
    check_name,
    load_manifest,
    manifest_path_for,
    profile_env,
    prometheus_name,
    stable_hash,
    to_prometheus,
    validate_jsonl,
    write_csv,
    write_jsonl,
)
from repro.metrics.snapshot import Snapshotter

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


# ---------------------------------------------------------------------------
# registry primitives


class TestNames:
    def test_dotted_arrow_names_are_legal(self):
        for name in ("nic0.tx.pps", "wire.0->1.in_flight", "dut.ring.depth",
                     "faults.active", "loop.lane_hit_ratio"):
            assert check_name(name) == name

    @pytest.mark.parametrize("bad", ["", "space name", "pipe|name", "café"])
    def test_bad_names_raise(self, bad):
        with pytest.raises(ConfigurationError):
            check_name(bad)

    def test_duplicate_registration_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ConfigurationError):
            registry.counter("a.b")

    def test_registration_order_is_iteration_order(self):
        registry = MetricsRegistry()
        for name in ("z.last", "a.first", "m.middle"):
            registry.gauge(name)
        assert registry.names() == ["z.last", "a.first", "m.middle"]


class TestCounterGauge:
    def test_manual_counter_increments(self):
        c = Counter("pkts")
        c.inc()
        c.inc(41)
        assert c.read() == 42

    def test_manual_counter_cannot_decrease(self):
        c = Counter("pkts")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_source_backed_counter_tracks_source(self):
        state = {"n": 0}
        registry = MetricsRegistry()
        c = registry.counter("pkts", lambda: state["n"])
        assert c.read() == 0
        state["n"] = 7
        assert c.read() == 7
        with pytest.raises(ConfigurationError):
            c.inc()

    def test_source_backed_gauge_cannot_be_set(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth", lambda: 3)
        assert g.read() == 3
        with pytest.raises(ConfigurationError):
            g.set(9)

    def test_registry_lookup(self):
        registry = MetricsRegistry()
        c = registry.counter("x")
        assert registry.get("x") is c
        assert "x" in registry and len(registry) == 1
        with pytest.raises(ConfigurationError):
            registry.get("missing")


class TestRate:
    def test_first_sample_is_zero_then_delta_per_second(self):
        state = {"n": 0}
        registry = MetricsRegistry()
        c = registry.counter("pkts", lambda: state["n"])
        r = registry.rate("pps", c)
        assert r.sample(1_000_000.0) == 0.0  # no previous snapshot
        state["n"] = 1500
        # 1500 packets over 1 ms of simulated time = 1.5 Mpps.
        assert r.sample(2_000_000.0) == pytest.approx(1.5e6)
        # No traffic in the next interval: rate falls back to zero.
        assert r.sample(3_000_000.0) == 0.0

    def test_counter_with_rate_names(self):
        registry = MetricsRegistry()
        registry.counter_with_rate("nic0.tx", lambda: 0)
        assert registry.names() == ["nic0.tx.packets", "nic0.tx.pps"]


class TestLog2Histogram:
    def test_bucket_placement(self):
        h = Log2Histogram("lat")
        for value in (0, 1, 2, 3, 4, 1000):
            h.observe(value)
        # int(v).bit_length(): 0→0, 1→1, 2..3→2, 4→3, 1000→10
        assert h.counts[0] == 1 and h.counts[1] == 1
        assert h.counts[2] == 2 and h.counts[3] == 1
        assert h.counts[10] == 1
        assert h.total == 6 and h.sum == 1010

    def test_overflow_clamps_to_last_bucket(self):
        h = Log2Histogram("lat")
        h.observe(2.0 ** 90)
        assert h.counts[h.N_BUCKETS - 1] == 1

    def test_negative_observation_raises(self):
        h = Log2Histogram("lat")
        with pytest.raises(ConfigurationError):
            h.observe(-1.0)

    def test_quantile_and_mean(self):
        h = Log2Histogram("lat")
        for _ in range(99):
            h.observe(100.0)   # bucket 7, upper edge 128
        h.observe(100_000.0)   # bucket 17, upper edge 131072
        assert h.quantile(0.5) == 128.0
        assert h.quantile(1.0) == 131072.0
        assert h.mean() == pytest.approx(1099.0)
        assert h.quantile(0.5) == 128.0  # quantile does not mutate state

    def test_interop_with_sample_exact_histogram(self):
        from repro.core.histogram import Histogram

        exact = Histogram()
        for v in (10.0, 20.0, 30.0):
            exact.update(v)
        h = Log2Histogram("lat")
        h.observe_histogram(exact)
        assert h.total == 3 and h.sum == 60.0

    def test_read_is_compact_and_json_stable(self):
        h = Log2Histogram("lat")
        h.observe(5.0)
        snap = h.read()
        assert snap == {"total": 1, "sum": 5.0, "buckets": {"3": 1}}
        assert json.loads(canonical_json(snap)) == snap


class TestLog2Percentile:
    """Interpolated percentile extraction (the in-dataplane report path)."""

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Log2Histogram("lat").percentile(50)

    def test_out_of_range_raises(self):
        h = Log2Histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError, match="range"):
            h.percentile(101)
        with pytest.raises(ValueError, match="range"):
            h.percentile(-0.1)

    def test_overflow_bucket_reports_lower_edge(self):
        # The overflow bucket has no upper edge to interpolate toward;
        # it reports its lower edge rather than inventing a value.
        h = Log2Histogram("lat")
        for _ in range(10):
            h.observe(2.0 ** 90)
        assert h.percentile(50) == float(1 << (Log2Histogram.N_BUCKETS - 2))

    def test_interpolates_inside_one_bucket(self):
        h = Log2Histogram("lat")
        for _ in range(3):
            h.observe(600.0)  # bucket [512, 1024)
        p0, p50, p100 = (h.percentile(p) for p in (0, 50, 100))
        assert 512.0 <= p0 < p50 < p100 < 1024.0

    @staticmethod
    def _bucket_of(value: float):
        """(lower edge, width) of the finite bucket holding ``value``."""
        i = int(value).bit_length()
        lo = 0.0 if i == 0 else float(1 << (i - 1))
        return lo, float(1 << i) - lo if i else 1.0

    @settings(max_examples=40, deadline=None)
    @given(samples=st.lists(
               st.floats(min_value=0, max_value=2.0 ** 45, allow_nan=False),
               min_size=1, max_size=300),
           p=st.floats(min_value=0, max_value=100))
    def test_agrees_with_sample_exact_percentile(self, samples, p):
        """``Log2Histogram.percentile`` vs the sample-exact
        ``Histogram.percentile``: both interpolate between the same two
        ranks, and the bucket estimate never leaves its sample's bucket,
        so the estimates agree to within one power-of-two bucket width
        (the wider of the two ranks' buckets)."""
        from repro.core.histogram import Histogram

        h = Log2Histogram("lat")
        for v in samples:
            h.observe(v)
        est = h.percentile(p)
        exact = Histogram(samples).percentile(p)

        ordered = sorted(samples)
        rank = p / 100 * (len(ordered) - 1)
        low_sample = ordered[int(rank)]
        high_sample = ordered[min(len(ordered) - 1, int(rank) + 1)]
        low_lo, low_width = self._bucket_of(low_sample)
        high_lo, high_width = self._bucket_of(high_sample)
        assert abs(est - exact) <= max(low_width, high_width)
        # And the hard bound: est stays within the ranks' bucket span.
        assert low_lo <= est <= high_lo + high_width


# ---------------------------------------------------------------------------
# exporters


def _toy_registry():
    """A small fixed registry: deterministic input for exporter tests."""
    registry = MetricsRegistry()
    state = {"pkts": 3000}
    pkts = registry.counter("nic0.tx.packets", lambda: state["pkts"],
                            help="packets transmitted by port 0")
    registry.rate("nic0.tx.pps", pkts,
                  help="tx rate between snapshots (sim time)")
    registry.gauge("wire.0->1.in_flight", lambda: 2,
                   help="frames currently on the wire")
    lat = registry.log2_histogram("latency_ns",
                                  help="end-to-end latency in ns")
    # The last sample lands in the overflow bucket: its count must be
    # carried only by the +Inf line, never a duplicate finite edge.
    for value in (100.0, 200.0, 400.0, 100_000.0, 2.0 ** 50):
        lat.observe(value)
    return registry


class TestPrometheus:
    def test_name_sanitization(self):
        assert prometheus_name("nic0.tx.pps") == "nic0_tx_pps"
        assert prometheus_name("wire.0->1.in_flight") == "wire_0__1_in_flight"
        assert prometheus_name("0weird") == "_0weird"

    def test_matches_committed_golden(self):
        text = to_prometheus(_toy_registry())
        golden = (GOLDEN_DIR / "metrics_registry.prom").read_text()
        assert text == golden

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus(_toy_registry())
        assert 'latency_ns_bucket{le="128"} 1\n' in text
        assert 'latency_ns_bucket{le="256"} 2\n' in text
        assert 'latency_ns_bucket{le="512"} 3\n' in text
        assert 'latency_ns_bucket{le="131072"} 4\n' in text
        assert 'latency_ns_bucket{le="+Inf"} 5\n' in text
        assert "latency_ns_count 5\n" in text

    def test_overflow_bucket_emits_single_inf_line(self):
        # The overflow bucket has no finite edge; a naive exporter used
        # to emit its cumulative count under le="2**47" AND +Inf.
        text = to_prometheus(_toy_registry())
        assert text.count('latency_ns_bucket{le="+Inf"}') == 1
        assert f'le="{1 << 47}"' not in text

    def test_rate_exported_as_gauge(self):
        text = to_prometheus(_toy_registry())
        assert "# TYPE nic0_tx_pps gauge" in text
        assert "# TYPE nic0_tx_packets counter" in text


class TestSeriesExport:
    def _series(self):
        series = TimeSeries()
        series.append({"t_ns": 1000.0, "a": 1, "h": {"total": 2}})
        series.append({"t_ns": 2000.0, "a": 3, "h": {"total": 5}})
        return series

    def test_jsonl_roundtrip_and_fingerprint_stability(self):
        series = self._series()
        out = io.StringIO()
        write_jsonl(series, out)
        rows = validate_jsonl(out.getvalue())
        assert [r["a"] for r in rows] == [1, 3]
        assert series.fingerprint() == self._series().fingerprint()

    def test_csv_flattens_histograms_to_totals(self):
        out = io.StringIO()
        write_csv(self._series(), out)
        lines = out.getvalue().splitlines()
        assert lines[0] == "t_ns,a,h"
        assert lines[1] == "1000.0,1,2"
        assert lines[2] == "2000.0,3,5"

    def test_validate_rejects_unordered_rows(self):
        bad = '{"t_ns": 2000, "a": 1}\n{"t_ns": 1000, "a": 2}\n'
        with pytest.raises(ValueError, match="t_ns"):
            validate_jsonl(bad)

    def test_validate_rejects_ragged_columns(self):
        bad = '{"t_ns": 1000, "a": 1}\n{"t_ns": 2000, "b": 2}\n'
        with pytest.raises(ValueError, match="columns"):
            validate_jsonl(bad)

    def test_validate_rejects_empty_series(self):
        with pytest.raises(ValueError, match="empty"):
            validate_jsonl("")

    def test_final_values_drop_time_column(self):
        final = self._series().final_values()
        assert final == {"a": 3, "h": {"total": 5}}


# ---------------------------------------------------------------------------
# snapshotter


def run_quickstart_with_metrics(seed=3, duration_ns=2_000_000,
                                interval_ns=1_000_000.0):
    env = MoonGenEnv(seed=seed, metrics=True)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)
    queue = tx.get_tx_queue(0)
    queue.set_rate_pps(2e6, 64)

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
            pkt_length=60))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(60)
            yield queue.send(bufs)

    snapshotter = env.start_snapshotter(interval_ns=interval_ns)
    env.launch(slave, env, queue)
    env.wait_for_slaves(duration_ns=duration_ns)
    snapshotter.finalize()
    return env, tx, rx, snapshotter


class TestSnapshotter:
    def test_rejects_nonpositive_interval(self):
        env = MoonGenEnv(seed=0, metrics=True)
        with pytest.raises(ConfigurationError):
            Snapshotter(env, env.metrics, interval_ns=0)

    def test_requires_metrics_enabled(self):
        env = MoonGenEnv(seed=0)
        with pytest.raises(ConfigurationError):
            env.start_snapshotter()

    def test_samples_on_interval_plus_final_drain_row(self):
        env, tx, rx, snap = run_quickstart_with_metrics()
        times = [row["t_ns"] for row in snap.series]
        # 2 ms at a 1 ms interval: samples at 1 ms and 2 ms, plus the
        # closing sample after wait_for_slaves drained in-flight frames.
        assert times[0] == pytest.approx(1_000_000.0)
        assert times[1] == pytest.approx(2_000_000.0)
        assert times == sorted(times)
        assert len(set(times)) == len(times), "duplicate snapshot instants"
        assert times[-1] == env.now_ns

    def test_sample_exactly_at_sim_end_not_duplicated(self):
        # The interval divides the duration exactly, so the task's last
        # interval sample lands on the stop horizon; finalize at the same
        # instant must not add a twin row.
        env, tx, rx, snap = run_quickstart_with_metrics(
            duration_ns=2_000_000, interval_ns=500_000.0)
        times = [row["t_ns"] for row in snap.series]
        assert len(set(times)) == len(times)
        snap.finalize()  # idempotent at the same instant
        assert [row["t_ns"] for row in snap.series] == times

    def test_final_counters_match_device_registers(self):
        env, tx, rx, snap = run_quickstart_with_metrics()
        final = snap.series.final_values()
        assert final["nic0.tx.packets"] == tx.tx_packets
        assert final["nic1.rx.packets"] == rx.rx_packets
        assert final["nic0.tx.packets"] > 0

    def test_mid_run_loop_events_are_live(self):
        env, tx, rx, snap = run_quickstart_with_metrics()
        events = snap.series.column("loop.events")
        # The first snapshot lands mid-run(); a stale counter would read 0.
        assert events[0] > 0
        assert events == sorted(events)
        assert events[-1] == env.loop.events_processed

    def test_pending_gauge_never_negative(self):
        # Cancelling a handle to an already-fired event (MAC wakeups,
        # wait_any timeouts) must not drive the live-event count below
        # zero — pending_events counts the queue exactly.
        env, tx, rx, snap = run_quickstart_with_metrics()
        assert all(v >= 0 for v in snap.series.column("loop.pending"))
        assert env.loop.pending_events >= 0

    def test_series_is_deterministic(self):
        _, _, _, a = run_quickstart_with_metrics(seed=9)
        _, _, _, b = run_quickstart_with_metrics(seed=9)
        assert a.series.fingerprint() == b.series.fingerprint()
        _, _, _, c = run_quickstart_with_metrics(seed=10)
        assert a.series.fingerprint() != c.series.fingerprint()

    def test_disabled_env_has_no_registry(self):
        env = MoonGenEnv(seed=0)
        assert env.metrics is None


class TestCounterMirrorProperty:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           duration_us=st.integers(min_value=200, max_value=900))
    def test_final_snapshot_equals_device_registers(self, seed, duration_us):
        env, tx, rx, snap = run_quickstart_with_metrics(
            seed=seed, duration_ns=duration_us * 1000,
            interval_ns=100_000.0)
        final = snap.series.final_values()
        assert final["nic0.tx.packets"] == tx.tx_packets
        assert final["nic0.tx.bytes"] == tx.tx_bytes
        assert final["nic1.rx.packets"] == rx.rx_packets
        assert final["nic1.rx.bytes"] == rx.rx_bytes


# ---------------------------------------------------------------------------
# manifest


class TestRunManifest:
    def test_roundtrip(self, tmp_path):
        result = tmp_path / "BENCH_core.json"
        manifest = RunManifest(
            command="moongen-repro bench --smoke", seed=7, jobs=2,
            config={"mode": "smoke"}, fault_plan={"faults": []},
            result_fingerprint="abcd")
        path = manifest.write(str(result))
        assert path == str(tmp_path / "BENCH_core.manifest.json")
        doc = load_manifest(path)
        assert doc["seed"] == 7 and doc["jobs"] == 2
        assert doc["config_hash"] == stable_hash({"mode": "smoke"})
        assert doc["fault_plan_hash"] == stable_hash({"faults": []})
        assert doc["result_fingerprint"] == "abcd"
        assert doc["python_version"].count(".") == 2

    def test_auxiliary_fingerprints_roundtrip(self, tmp_path):
        manifest = RunManifest(command="moongen-repro precision",
                               fingerprints={"latency": "beefcafe"})
        doc = load_manifest(manifest.write(str(tmp_path / "out.csv")))
        assert doc["fingerprints"] == {"latency": "beefcafe"}

    def test_fingerprints_absent_by_default(self):
        # Older manifests must stay byte-identical: the key only
        # appears when a fingerprint was recorded.
        assert "fingerprints" not in RunManifest(command="x").to_dict()

    def test_hash_is_order_insensitive(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_path_mapping(self):
        assert manifest_path_for("out/sweep.jsonl") == \
            "out/sweep.manifest.json"

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "x.manifest.json"
        path.write_text('{"schema": 999}')
        with pytest.raises(ValueError, match="schema"):
            load_manifest(str(path))


# ---------------------------------------------------------------------------
# self-profiler


class TestProfiler:
    def test_categorize(self):
        assert categorize("NicPort._mac_done") == "nic"
        assert categorize("Wire._deliver_due") == "wire"
        assert categorize("Process._advance_none") == "process"
        assert categorize(
            "FaultInjector._arm_wire_fault.<locals>.start") == "faults"
        assert categorize("mystery") == "other"

    def test_profile_smoke(self):
        env = MoonGenEnv(seed=3)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        queue = tx.get_tx_queue(0)
        queue.set_rate_pps(2e6, 64)

        def slave(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60))
            bufs = mem.buf_array()
            while env.running():
                bufs.alloc(60)
                yield queue.send(bufs)

        env.launch(slave, env, queue)
        report = profile_env(env, duration_ns=500_000)
        assert report.events == env.loop.events_processed
        assert report.events > 0
        assert tx.tx_packets > 0, "profiling must not change behaviour"
        # Attribution covers the measured loop time (the >=95% criterion;
        # by construction the residual is booked to the profiler itself).
        assert report.attributed_wall_s() >= 0.95 * report.total_wall_s
        assert {"nic", "wire", "scheduler"} <= set(report.categories)
        doc = report.to_dict()
        assert doc["events"] == report.events
        assert report.format_table().startswith("profiled")
        json.loads(report.to_json())

    def test_profiled_run_matches_unprofiled_counters(self):
        def build(seed):
            env = MoonGenEnv(seed=seed)
            tx = env.config_device(0, tx_queues=1)
            rx = env.config_device(1, rx_queues=1)
            env.connect(tx, rx)
            queue = tx.get_tx_queue(0)
            queue.set_rate_pps(2e6, 64)

            def slave(env, queue):
                mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                    pkt_length=60))
                bufs = mem.buf_array()
                while env.running():
                    bufs.alloc(60)
                    yield queue.send(bufs)

            env.launch(slave, env, queue)
            return env, tx, rx

        env_a, tx_a, rx_a = build(11)
        env_a.wait_for_slaves(duration_ns=500_000)
        env_b, tx_b, rx_b = build(11)
        profile_env(env_b, duration_ns=500_000)
        assert (tx_a.tx_packets, rx_a.rx_packets) == \
            (tx_b.tx_packets, rx_b.rx_packets)
        assert env_a.loop.events_processed == env_b.loop.events_processed
