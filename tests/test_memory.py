"""Tests for memory pools and bufArrays (the Section 4.2 buffer model)."""

import pytest

from repro.core.memory import BufArray, MemPool, PacketBuffer
from repro.errors import ConfigurationError, QueueError


class TestMemPool:
    def test_fill_callback_runs_once_per_buffer(self):
        calls = []
        MemPool(n_buffers=8, fill=lambda buf: calls.append(buf))
        assert len(calls) == 8

    def test_prefill_persists(self):
        """The fill callback pre-crafts packets; alloc must not erase them."""
        pool = MemPool(
            n_buffers=4,
            fill=lambda buf: buf.udp_packet.fill(pkt_length=60, udp_dst=42),
        )
        bufs = pool.buf_array(2)
        bufs.alloc(60)
        assert all(b.udp_packet.udp.dst_port == 42 for b in bufs)

    def test_take_sets_size(self):
        pool = MemPool(n_buffers=4)
        (buf,) = pool.take(1, 124)
        assert buf.pkt.size == 124

    def test_give_back_recycles_without_erasing(self):
        pool = MemPool(n_buffers=1)
        (buf,) = pool.take(1, 60)
        buf.pkt.data[0] = 0xAA
        pool.give_back(buf)
        (again,) = pool.take(1, 60)
        assert again is buf
        assert again.pkt.data[0] == 0xAA  # contents not erased (Section 4.2)

    def test_double_free_rejected(self):
        pool = MemPool(n_buffers=2)
        (buf,) = pool.take(1, 60)
        pool.give_back(buf)
        with pytest.raises(QueueError):
            pool.give_back(buf)

    def test_available_tracks_usage(self):
        pool = MemPool(n_buffers=8)
        taken = pool.take(3, 60)
        assert pool.available == 5
        for buf in taken:
            pool.give_back(buf)
        assert pool.available == 8

    def test_rejects_empty_pool(self):
        with pytest.raises(ConfigurationError):
            MemPool(n_buffers=0)

    def test_free_signal_triggers(self):
        pool = MemPool(n_buffers=1)
        (buf,) = pool.take(1, 60)
        woke = []
        pool.free_signal.wait(lambda v: woke.append(1))
        pool.give_back(buf)
        assert woke == [1]


class TestBufArray:
    def test_alloc_full_batch(self):
        pool = MemPool(n_buffers=100)
        bufs = pool.buf_array(63)
        bufs.alloc(60)
        assert len(bufs) == 63
        assert all(b.pkt.size == 60 for b in bufs)

    def test_alloc_exhaustion_raises(self):
        pool = MemPool(n_buffers=10)
        bufs = pool.buf_array(63)
        with pytest.raises(QueueError):
            bufs.alloc(60)
        assert pool.available == 10  # partial take rolled back

    def test_alloc_while_owning_raises(self):
        pool = MemPool(n_buffers=100)
        bufs = pool.buf_array(4)
        bufs.alloc(60)
        with pytest.raises(QueueError):
            bufs.alloc(60)

    def test_release_empties(self):
        pool = MemPool(n_buffers=100)
        bufs = pool.buf_array(4)
        bufs.alloc(60)
        out = bufs.release()
        assert len(out) == 4 and len(bufs) == 0

    def test_free_all_returns_to_pool(self):
        pool = MemPool(n_buffers=8)
        bufs = pool.buf_array(4)
        bufs.alloc(60)
        bufs.free_all()
        assert pool.available == 8

    def test_iteration_and_indexing(self):
        pool = MemPool(n_buffers=8)
        bufs = pool.buf_array(3)
        bufs.alloc(60)
        assert [b for b in bufs] == [bufs[0], bufs[1], bufs[2]]

    def test_rejects_zero_batch(self):
        with pytest.raises(ConfigurationError):
            BufArray(MemPool(n_buffers=4), 0)

    def test_no_pool_cannot_alloc(self):
        bufs = BufArray(None, 4)
        with pytest.raises(ConfigurationError):
            bufs.alloc(60)

    def test_flags_reset_on_alloc(self):
        pool = MemPool(n_buffers=1)
        bufs = pool.buf_array(1)
        bufs.alloc(60)
        buf = bufs[0]
        buf.offload_l4 = True
        buf.corrupt_fcs = True
        buf.timestamp_flag = True
        bufs.free_all()
        bufs.alloc(60)
        assert not (buf.offload_l4 or buf.corrupt_fcs or buf.timestamp_flag)


class TestLedger:
    def make(self):
        pool = MemPool(n_buffers=100)
        bufs = pool.buf_array(4)
        bufs.alloc(60)
        return bufs

    def test_offload_udp_sets_flags_and_ledger(self):
        bufs = self.make()
        bufs.offload_udp_checksums()
        assert all(b.offload_ip and b.offload_l4 for b in bufs)
        assert ("offload_udp", None) in bufs.drain_ledger()

    def test_offload_ip_only(self):
        bufs = self.make()
        bufs.offload_ip_checksums()
        assert all(b.offload_ip and not b.offload_l4 for b in bufs)

    def test_offload_tcp(self):
        bufs = self.make()
        bufs.offload_tcp_checksums()
        assert ("offload_tcp", None) in bufs.drain_ledger()

    def test_charges_accumulate(self):
        bufs = self.make()
        bufs.charge_modify(1)
        bufs.charge_random_fields(8)
        bufs.charge_counter_fields(2)
        entries = bufs.drain_ledger()
        assert ("modify", 1) in entries
        assert ("random", 8) in entries
        assert ("counter", 2) in entries

    def test_drain_clears(self):
        bufs = self.make()
        bufs.charge_modify(1)
        bufs.drain_ledger()
        assert bufs.drain_ledger() == []

    def test_ledger_cleared_on_alloc(self):
        pool = MemPool(n_buffers=100)
        bufs = pool.buf_array(2)
        bufs.alloc(60)
        bufs.charge_modify(1)
        bufs.release()
        bufs.alloc(60)
        assert bufs.drain_ledger() == []


class TestPacketBufferAccessors:
    def test_stack_accessors(self):
        pool = MemPool(n_buffers=1)
        (buf,) = pool.take(1, 80)
        buf.udp_packet.fill(pkt_length=80)
        assert buf.ip_packet.ip.version == 4
        assert buf.eth_packet.eth.ether_type == 0x0800
        assert buf.size == 80
