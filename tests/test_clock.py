"""Tests for the NIC PTP clock models (Section 6.1 artifacts)."""

import pytest

from repro.nicsim.clock import (
    NicClock,
    TICK_10G_NS,
    TICK_1G_NS,
    TICK_82580_NS,
    clock_for_speed,
)
from repro.nicsim.eventloop import EventLoop
from repro import units


def at(loop, ns):
    return round(ns * 1000)


class TestQuantization:
    def test_tick_constants(self):
        assert TICK_10G_NS == 6.4    # 156.25 MHz
        assert TICK_1G_NS == 64.0    # 15.625 MHz
        assert TICK_82580_NS == 64.0

    def test_read_quantizes_down(self):
        loop = EventLoop()
        clock = NicClock(loop, tick_ns=6.4)
        assert clock.read_ns(at(loop, 10.0)) == pytest.approx(6.4)
        assert clock.read_ns(at(loop, 12.8)) == pytest.approx(12.8)

    def test_latch_coarser_than_tick(self):
        # The 82599 latches every 2 cycles: 12.8 ns grid (Section 6.1).
        loop = EventLoop()
        clock = NicClock(loop, tick_ns=6.4, latch_ticks=2)
        assert clock.timestamp_ns(at(loop, 19.0)) == pytest.approx(12.8)
        assert clock.read_ns(at(loop, 19.0)) == pytest.approx(12.8)
        assert clock.read_ns(at(loop, 6.5)) == pytest.approx(6.4)
        assert clock.timestamp_ns(at(loop, 6.5)) == pytest.approx(0.0)

    def test_82580_phase(self):
        # t = n*64 + k*8 ns with constant k (Section 6.1).
        loop = EventLoop()
        clock = NicClock(loop, tick_ns=64.0, phase_ns=3 * 8.0)
        stamp = clock.timestamp_ns(at(loop, 1000.0))
        assert (stamp - 24.0) % 64.0 == pytest.approx(0.0)

    def test_clock_for_speed(self):
        loop = EventLoop()
        assert clock_for_speed(loop, units.SPEED_10G).tick_ns == TICK_10G_NS
        assert clock_for_speed(loop, units.SPEED_1G).tick_ns == TICK_1G_NS


class TestDrift:
    def test_drift_accumulates(self):
        loop = EventLoop()
        fast = NicClock(loop, drift_ppm=35.0)  # worst case of Section 6.3
        slow = NicClock(loop, drift_ppm=0.0)
        one_second_ps = 10 ** 12
        diff = fast.raw_time_ns(one_second_ps) - slow.raw_time_ns(one_second_ps)
        assert diff == pytest.approx(35_000.0)  # 35 µs per second

    def test_set_drift_preserves_reading(self):
        loop = EventLoop()
        loop.run_for(10 ** 9)
        clock = NicClock(loop, drift_ppm=0.0)
        before = clock.raw_time_ns()
        clock.set_drift_ppm(35.0)
        assert clock.raw_time_ns() == pytest.approx(before, abs=1e-6)

    def test_offset_to(self):
        loop = EventLoop()
        a = NicClock(loop, offset_ns=100.0)
        b = NicClock(loop, offset_ns=30.0)
        assert a.offset_to(b) == pytest.approx(70.0)


class TestAdjust:
    def test_adjust_shifts_reading(self):
        loop = EventLoop()
        clock = NicClock(loop)
        base = clock.raw_time_ns()
        clock.adjust(123.4)
        assert clock.raw_time_ns() == pytest.approx(base + 123.4)

    def test_adjust_is_cumulative(self):
        loop = EventLoop()
        clock = NicClock(loop)
        clock.adjust(10.0)
        clock.adjust(-4.0)
        assert clock.raw_time_ns() == pytest.approx(6.0)
