"""Tests for Section 3.2's claim: NIC buffers conceal short pause times.

"LuaJIT may introduce unpredictable pause times... Pause times are handled
by the NIC buffers: ... the smallest buffer on the X540 chip is the 160 kB
transmit buffer, which can store 128 µs of data at 10 GbE.  This
effectively conceals short pause times."

The simulated NIC implements both stages: the 512-descriptor ring and the
160 kB on-chip FIFO the DMA engine prefetches into.  With 64 B frames that
is 512 + 2560 frames ≈ 206 µs of wire coverage — more than the paper's
128 µs figure because small frames carry 20 B of per-frame wire overhead
that lives outside the FIFO.  A task that stalls (GC pause, JIT
compilation) for less than the buffered coverage leaves no gap on the
wire; longer stalls do.
"""

import pytest

from repro import MoonGenEnv, units
from repro.nicsim.nic import CHIP_X540

#: Frames buffered in NIC hardware: descriptor ring + FIFO (64 B frames).
BUFFERED_FRAMES = 512 + CHIP_X540.tx_fifo_bytes // 64
#: Wire time those frames cover at 10 GbE.
COVERAGE_NS = BUFFERED_FRAMES * units.frame_time_ns(64, units.SPEED_10G)


def run_with_pause(pause_ns: float, pre_batches: int = 130, seed: int = 5):
    """A transmit loop that stalls once after filling the NIC buffers.

    Returns the largest inter-departure gap observed on the wire.
    """
    env = MoonGenEnv(seed=seed)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)
    departures = []
    tx.port.tx_observers.append(lambda f, t: departures.append(t))

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
            pkt_length=60))
        bufs = mem.buf_array()
        for iteration in range(pre_batches + 20):
            if not env.running():
                return
            bufs.alloc(60)
            yield queue.send(bufs)
            if iteration == pre_batches:
                # The GC/JIT pause: the core does nothing for a while.
                yield env.sleep_ns(pause_ns)

    env.launch(slave, env, tx.get_tx_queue(0))
    env.wait_for_slaves(duration_ns=2_000_000)
    gaps_ns = [(b - a) / 1000 for a, b in zip(departures, departures[1:])]
    return max(gaps_ns)


class TestPauseConcealment:
    def test_coverage_exceeds_papers_figure(self):
        """The X540's buffers cover at least the 128 µs the paper quotes."""
        assert COVERAGE_NS >= 128_000.0

    def test_microsecond_pause_concealed(self):
        """LuaJIT pauses of 'a couple of microseconds' never reach the wire."""
        max_gap = run_with_pause(10_000.0)
        assert max_gap == pytest.approx(
            units.frame_time_ns(64, units.SPEED_10G), abs=1.0
        )

    def test_128us_pause_concealed(self):
        """The paper's headline figure: a 128 µs stall is invisible."""
        max_gap = run_with_pause(128_000.0)
        assert max_gap < 100.0  # still back-to-back on the wire

    def test_pause_near_coverage_concealed(self):
        max_gap = run_with_pause(COVERAGE_NS * 0.9)
        assert max_gap < 100.0

    def test_long_pause_leaks_through(self):
        """A pause far beyond the buffer coverage starves the wire."""
        pause = COVERAGE_NS * 2
        max_gap = run_with_pause(pause)
        assert max_gap > 0.5 * COVERAGE_NS

    def test_gap_size_matches_excess(self):
        """The visible gap is roughly the pause minus the buffered time."""
        pause = COVERAGE_NS + 100_000.0
        max_gap = run_with_pause(pause)
        assert max_gap == pytest.approx(100_000.0, rel=0.35)
