"""Property-based chaos tests: invariants under *arbitrary* fault plans.

Hypothesis composes random plans out of every schedulable fault kind and
runs each through the canonical chaos scenario.  Whatever the plan:

* conservation holds — every frame the wire accepted is received, CRC-
  dropped, fault-dropped, or still in flight,
* ``loss_fraction`` is a fraction,
* the event loop terminates (no fault combination deadlocks the run),
* the run is deterministic: the same plan replays to the same
  fingerprint.
"""

from hypothesis import given, settings, strategies as st

from repro.faults import (
    BurstLoss,
    ClockDrift,
    ClockStep,
    CorruptionBurst,
    DmaSlowdown,
    FaultPlan,
    LinkFlap,
    QueueStall,
    RingFreeze,
)
from repro.faults.runner import run_plan
from tests._hypothesis_profiles import property_settings

SETTINGS = property_settings(12)

#: Every window fits inside the 2.5 ms simulated run.
_START = st.integers(min_value=0, max_value=2_000_000)
_LENGTH = st.integers(min_value=1_000, max_value=1_500_000)
_PROB = st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False)


def _windowed(cls, **fixed):
    return st.builds(
        lambda start, length, kw: cls(start_ns=float(start),
                                      end_ns=float(start + length), **kw),
        _START, _LENGTH, st.fixed_dictionaries(fixed),
    )


_FAULT = st.one_of(
    _windowed(BurstLoss, target=st.just("wire:0->1"),
              p_good_bad=_PROB, p_bad_good=_PROB,
              loss_good=_PROB, loss_bad=_PROB),
    _windowed(CorruptionBurst, target=st.just("wire:0->1"), rate=_PROB),
    _windowed(LinkFlap, target=st.sampled_from(["port:0", "port:1"])),
    _windowed(QueueStall, target=st.just("port:0"),
              queue=st.integers(min_value=0, max_value=1)),
    _windowed(DmaSlowdown, target=st.sampled_from(["port:0", "port:1"]),
              factor=st.floats(min_value=1.0, max_value=32.0)),
    _windowed(RingFreeze, target=st.just("port:1"), queue=st.just(0)),
    st.builds(ClockStep, target=st.sampled_from(["port:0", "port:1"]),
              at_ns=st.integers(min_value=0, max_value=2_400_000).map(float),
              step_ns=st.floats(min_value=-5_000.0, max_value=5_000.0)),
    st.builds(ClockDrift, target=st.sampled_from(["port:0", "port:1"]),
              at_ns=st.integers(min_value=0, max_value=2_400_000).map(float),
              drift_ppm=st.floats(min_value=-200.0, max_value=200.0)),
)

_PLAN = st.builds(
    lambda faults, seed: FaultPlan(faults=tuple(faults), seed=seed),
    st.lists(_FAULT, min_size=0, max_size=4),
    st.integers(min_value=0, max_value=7),
)


class TestChaosProperties:
    @settings(**SETTINGS)
    @given(_PLAN)
    def test_conservation_and_bounded_loss(self, plan):
        # run_plan terminating at all *is* the no-deadlock property: the
        # horizon stops well-formed tasks and stragglers are killed only
        # after the event queue drains.
        result = run_plan(plan, duration_ns=2_500_000.0, rate_pps=1e6)
        assert result["wire_sent"] == (result["rx_packets"]
                                       + result["rx_crc_errors"]
                                       + result["wire_dropped"]
                                       + result["wire_in_flight"])
        assert 0.0 <= result["loss_fraction"] <= 1.0
        assert result["seq_lost"] >= 0
        assert result["seq_gap_events"] <= max(result["seq_lost"], 0)

    @settings(**SETTINGS)
    @given(_PLAN)
    def test_replay_is_bit_identical(self, plan):
        first = run_plan(plan, duration_ns=2_000_000.0, rate_pps=1e6)
        second = run_plan(plan, duration_ns=2_000_000.0, rate_pps=1e6)
        assert first == second
