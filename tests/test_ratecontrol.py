"""Tests for traffic patterns and the CRC-gap rate control (Section 8)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import MoonGenEnv, units
from repro.core.ratecontrol import (
    CbrPattern,
    CustomGapPattern,
    DEFAULT_MIN_FILLER_WIRE,
    GapFiller,
    HARD_MIN_WIRE,
    MAX_FILLER_WIRE,
    PoissonPattern,
    SHORT_FRAME_MAX_PPS,
    TrafficPattern,
    UniformBurstPattern,
    crc_rate_control_frame_rate,
    effective_pps,
)
from repro.errors import ConfigurationError, GapError


class TestPatterns:
    def test_cbr_constant(self):
        gaps = CbrPattern(1e6).gaps_ns(100)
        assert np.all(gaps == 1000.0)

    def test_cbr_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            CbrPattern(0)

    def test_poisson_mean(self):
        gaps = PoissonPattern(1e6, seed=1).gaps_ns(200_000)
        assert gaps.mean() == pytest.approx(1000.0, rel=0.01)

    def test_poisson_is_exponential(self):
        gaps = PoissonPattern(1e6, seed=2).gaps_ns(200_000)
        # For an exponential distribution the std equals the mean.
        assert gaps.std() == pytest.approx(gaps.mean(), rel=0.02)

    def test_poisson_reproducible(self):
        a = PoissonPattern(1e6, seed=3).gaps_ns(100)
        b = PoissonPattern(1e6, seed=3).gaps_ns(100)
        assert np.array_equal(a, b)

    def test_burst_pattern_structure(self):
        pattern = UniformBurstPattern(pps=1e6, burst_size=4)
        gaps = pattern.gaps_ns(8)
        wire = units.frame_time_ns(64, units.SPEED_10G)
        assert gaps[0] == gaps[1] == gaps[2] == pytest.approx(wire)
        assert gaps[3] > gaps[0]

    def test_burst_pattern_mean_rate(self):
        pattern = UniformBurstPattern(pps=2e6, burst_size=8)
        gaps = pattern.gaps_ns(8000)
        assert gaps.mean() == pytest.approx(500.0, rel=0.01)

    def test_burst_pattern_rejects_overload(self):
        with pytest.raises(ConfigurationError):
            UniformBurstPattern(pps=20e6, burst_size=4)

    def test_custom_pattern_replays(self):
        pattern = CustomGapPattern([100.0, 200.0, 300.0])
        assert list(pattern.gaps_ns(6)) == [100, 200, 300, 100, 200, 300]
        assert pattern.mean_gap_ns() == pytest.approx(200.0)

    def test_custom_rejects_bad(self):
        with pytest.raises(ConfigurationError):
            CustomGapPattern([])
        with pytest.raises(ConfigurationError):
            CustomGapPattern([-1.0])

    def test_iter_gaps(self):
        it = CbrPattern(1e6).iter_gaps_ns()
        assert [next(it) for _ in range(3)] == [1000.0, 1000.0, 1000.0]


class TestGapFillerConstruction:
    def test_defaults(self):
        filler = GapFiller()
        assert filler.min_filler_wire == DEFAULT_MIN_FILLER_WIRE == 76
        assert filler.byte_time_ns == pytest.approx(0.8)

    def test_hard_minimum_enforced(self):
        # Section 8.1: the NICs refuse wire lengths below 33 bytes.
        with pytest.raises(GapError):
            GapFiller(min_filler_wire=32)
        GapFiller(min_filler_wire=HARD_MIN_WIRE)  # exactly 33 is allowed

    def test_bad_max(self):
        with pytest.raises(GapError):
            GapFiller(min_filler_wire=100, max_filler_wire=99)

    def test_unrepresentable_range(self):
        # Section 8.1: gaps of 0.8-60.8 ns cannot be generated at 10 GbE.
        low, high = GapFiller().unrepresentable_gap_range_ns()
        assert low == pytest.approx(0.8)
        assert high == pytest.approx(60.0)

    def test_short_frame_rate_constant(self):
        assert SHORT_FRAME_MAX_PPS == pytest.approx(15.6e6)


class TestPlan:
    def test_cbr_plan_exact(self):
        filler = GapFiller()
        plan = filler.plan_pattern(CbrPattern(1e6), 1000)
        assert plan.actual_gaps_ns.mean() == pytest.approx(1000.0, rel=1e-6)
        assert plan.max_error_ns() <= 0.8  # byte granularity

    def test_filler_sizes_legal(self):
        filler = GapFiller()
        plan = filler.plan_pattern(PoissonPattern(2e6, seed=5), 5000)
        for fillers in plan.filler_wire_bytes:
            for size in fillers:
                assert filler.min_filler_wire <= size <= filler.max_filler_wire

    def test_long_gaps_split_into_multiple_fillers(self):
        filler = GapFiller()
        plan = filler.plan([100_000.0])  # 100 µs gap
        fillers = plan.filler_wire_bytes[0]
        assert len(fillers) > 1
        assert sum(fillers) == pytest.approx(
            (100_000.0 - 67.2) / 0.8, abs=1.0
        )

    def test_mean_rate_preserved_with_unrepresentable_gaps(self):
        """Skip-and-stretch keeps the average exact (Section 8.4)."""
        filler = GapFiller()
        # 97 ns desired: idle of 29.8 ns, below the 60.8 ns minimum filler.
        plan = filler.plan([97.0] * 10_000)
        assert plan.actual_gaps_ns.mean() == pytest.approx(97.0, rel=1e-3)
        # Individual gaps are imprecise by up to half a minimum filler.
        assert plan.max_error_ns() <= 76 * 0.8

    def test_back_to_back_for_tiny_gaps(self):
        filler = GapFiller()
        plan = filler.plan([68.0, 68.0, 68.0, 68.0])
        wire = 67.2
        assert any(g == pytest.approx(wire) for g in plan.actual_gaps_ns)

    def test_sub_wire_gaps_allowed_in_random_patterns(self):
        filler = GapFiller()
        plan = filler.plan([10.0, 2000.0, 10.0, 2000.0])
        assert plan.actual_gaps_ns.mean() == pytest.approx(1005.0, rel=0.01)

    def test_rejects_rate_above_line(self):
        filler = GapFiller()
        with pytest.raises(GapError):
            filler.plan([50.0] * 100)  # mean 50 ns < 67.2 ns wire time

    def test_rejects_negative(self):
        with pytest.raises(GapError):
            GapFiller().plan([-1.0])

    def test_rejects_empty(self):
        with pytest.raises(GapError):
            GapFiller().plan([])

    def test_departure_times_cumulative(self):
        plan = GapFiller().plan([1000.0, 1000.0])
        times = plan.departure_times_ns(start_ns=500.0)
        assert times[0] == 500.0
        assert times[-1] == pytest.approx(2500.0, abs=2.0)

    def test_effective_pps(self):
        plan = GapFiller().plan_pattern(CbrPattern(1e6), 1000)
        assert effective_pps(plan) == pytest.approx(1e6, rel=1e-3)

    def test_render_wire_figure9(self):
        plan = GapFiller().plan([1000.0, 67.2, 1000.0])
        text = plan.render_wire()
        assert text.startswith("| p0 | i0:")
        # The back-to-back pair renders with no filler in between.
        assert "p1 | p2" in text

    def test_render_wire_truncates(self):
        plan = GapFiller().plan([1000.0] * 20)
        assert "p4" in plan.render_wire(5)
        assert "p5" not in plan.render_wire(5)

    def test_total_frame_rate_below_short_frame_limit(self):
        """Even dense filler schedules stay under 15.6 Mpps (Section 8.1)."""
        filler = GapFiller()
        plan = filler.plan_pattern(CbrPattern(7e6), 10_000)
        assert crc_rate_control_frame_rate(plan) <= SHORT_FRAME_MAX_PPS

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.08, max_value=10.0),
           st.integers(min_value=0, max_value=2 ** 31))
    def test_poisson_plan_rate_property(self, mpps, seed):
        """Any feasible Poisson rate is realised accurately on average."""
        filler = GapFiller()
        pattern = PoissonPattern(mpps * 1e6, seed=seed)
        plan = filler.plan_pattern(pattern, 4000)
        realised = effective_pps(plan)
        desired = 1e9 / plan.desired_gaps_ns.mean() * 1e0
        assert realised == pytest.approx(desired * 1e0, rel=0.02)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=67.2, max_value=1e5),
                    min_size=10, max_size=200))
    def test_arbitrary_gaps_error_bounded(self, gaps):
        """Per-gap error is bounded by one minimum filler (the dither's
        carry moves by at most min/2 in each direction), and the cumulative
        error stays within half a filler — high accuracy, bounded
        precision (Section 8.4)."""
        import numpy as np
        plan = GapFiller().plan(gaps)
        assert plan.max_error_ns() <= 76 * 0.8 + 0.8
        cum = np.cumsum(plan.actual_gaps_ns) - np.cumsum(plan.desired_gaps_ns)
        assert np.abs(cum).max() <= (76 / 2 + 1) * 0.8


class TestLoadTaskIntegration:
    def test_fillers_dropped_at_receiver(self):
        env = MoonGenEnv(seed=1)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        filler = GapFiller()
        pattern = CbrPattern(1e6)

        def craft(buf, index):
            buf.eth_packet.fill(eth_src="02:00:00:00:00:01",
                                eth_dst=str(rx.mac), eth_type=0x0800)

        env.launch(filler.load_task, env, tx.get_tx_queue(0), pattern,
                   50, craft)
        env.wait_for_slaves(duration_ns=5_000_000)
        assert rx.rx_packets == 50
        assert rx.rx_crc_errors > 0
        assert tx.tx_packets == rx.rx_packets + rx.rx_crc_errors

    def test_valid_packet_spacing_on_wire(self):
        """Received valid packets arrive with the planned CBR spacing."""
        env = MoonGenEnv(seed=2)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        arrivals = []
        original = rx.port.receive

        def spy(frame, t):
            if frame.fcs_ok:
                arrivals.append(t)
            original(frame, t)

        tx.port.wire.connect(spy)
        filler = GapFiller()

        def craft(buf, index):
            buf.eth_packet.fill(eth_type=0x0800)

        env.launch(filler.load_task, env, tx.get_tx_queue(0),
                   CbrPattern(2e6), 60, craft)
        env.wait_for_slaves(duration_ns=5_000_000)
        gaps = np.diff(arrivals) / 1000.0
        assert gaps.mean() == pytest.approx(500.0, rel=0.01)
        assert np.abs(gaps - 500.0).max() <= 1.0  # near-perfect CBR
