"""Cross-cutting property-based tests of simulation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import MoonGenEnv, units
from repro.core.ratecontrol import GapFiller, PoissonPattern
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Wire
from repro.nicsim.nic import CHIP_X540, NicPort, SimFrame
from repro.packet import PacketData


def frame(size=60):
    return SimFrame(b"\x00" * size)


class TestMacInvariants:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=60, max_value=1514),
                    min_size=2, max_size=60))
    def test_wire_never_exceeds_line_rate(self, sizes):
        """No frame schedule can overlap serializations on the wire."""
        loop = EventLoop()
        port = NicPort(loop, chip=CHIP_X540)
        wire = Wire(loop, port.speed_bps)
        arrivals = []
        wire.connect(lambda f, t: arrivals.append((f, t)))
        port.attach_wire(wire)
        port.get_tx_queue(0).enqueue([frame(s) for s in sizes])
        loop.run()
        # Deliveries are end-of-frame: consecutive arrivals are separated
        # by at least the *second* frame's serialization time.
        for (f1, t1), (f2, t2) in zip(arrivals, arrivals[1:]):
            min_gap = units.frame_time_ps(f2.size, port.speed_bps)
            assert t2 - t1 >= min_gap - 1

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.05, max_value=8.0),
           st.integers(min_value=0, max_value=1000))
    def test_hw_rate_limiter_average_exact(self, mpps, seed):
        """The dithered rate limiter realises any rate exactly on average."""
        loop = EventLoop()
        port = NicPort(loop, chip=CHIP_X540)
        port.attach_wire(Wire(loop, port.speed_bps))
        queue = port.get_tx_queue(0)
        queue.set_rate_pps(mpps * 1e6, 64)
        times = []
        port.tx_observers.append(lambda f, t: times.append(t))
        queue.enqueue([frame() for _ in range(300)])
        loop.run()
        duration_s = (times[-1] - times[0]) / 1e12
        assert 299 / duration_s == pytest.approx(mpps * 1e6, rel=0.01)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=100))
    def test_conservation_across_queues(self, n_queues, per_queue):
        """Every enqueued frame is transmitted exactly once."""
        loop = EventLoop()
        port = NicPort(loop, chip=CHIP_X540, n_tx_queues=n_queues)
        port.attach_wire(Wire(loop, port.speed_bps))
        seen = []
        port.tx_observers.append(lambda f, t: seen.append(f.seq))
        expected = []
        for q in range(n_queues):
            frames = [frame() for _ in range(per_queue)]
            expected += [f.seq for f in frames]
            assert port.tx_queues[q].enqueue(frames) == per_queue
        loop.run()
        assert sorted(seen) == sorted(expected)
        assert port.tx_packets == n_queues * per_queue


class TestGapFillerInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.floats(min_value=0.1, max_value=12.0))
    def test_poisson_plan_monotone_and_accurate(self, seed, mpps):
        pattern = PoissonPattern(mpps * 1e6, seed=seed)
        plan = GapFiller().plan_pattern(pattern, 2000)
        times = plan.departure_times_ns()
        assert np.all(np.diff(times) > 0)
        realised = 2000 / ((times[-1] - times[0]) / 1e9) if times[-1] > 0 else 0
        desired = 1e9 / plan.desired_gaps_ns.mean()
        assert realised == pytest.approx(desired, rel=0.02)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=50_000.0),
                    min_size=50, max_size=300))
    def test_cumulative_error_bounded(self, raw_gaps):
        """The dither carry keeps the cumulative timing error bounded by
        one minimum filler, for any gap sequence that is feasible on
        average."""
        gaps = [g + 67.2 for g in raw_gaps]  # make the mean feasible
        plan = GapFiller().plan(gaps)
        cum_desired = np.cumsum(plan.desired_gaps_ns)
        cum_actual = np.cumsum(plan.actual_gaps_ns)
        assert np.abs(cum_actual - cum_desired).max() <= 76 * 0.8 + 1.0


class TestEndToEndConservation:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=200),
           st.integers(min_value=0, max_value=10))
    def test_tx_equals_rx_plus_drops(self, n_valid, n_invalid):
        """Frames are conserved: tx = rx + CRC drops + ring misses."""
        env = MoonGenEnv(seed=1)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)

        def slave(env, queue):
            mem = env.create_mempool(n_buffers=n_valid + n_invalid + 64)
            bufs = mem.buf_array(1)
            for i in range(n_valid + n_invalid):
                bufs.alloc(60)
                bufs[0].corrupt_fcs = i < n_invalid
                yield queue.send(bufs)

        env.launch(slave, env, tx.get_tx_queue(0))
        env.wait_for_slaves()
        assert tx.tx_packets == n_valid + n_invalid
        assert rx.rx_packets + rx.rx_crc_errors + rx.rx_missed == tx.tx_packets
        assert rx.rx_crc_errors == n_invalid


class TestPacketInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=46, max_value=1514),
           st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_udp_fill_checksum_roundtrip(self, size, ip, port):
        pkt = PacketData(size, capacity=2048)
        p = pkt.udp_packet
        p.fill(pkt_length=size, ip_src=ip, ip_dst=(ip ^ 0xFFFF),
               udp_src=port, udp_dst=(port ^ 0xAA))
        p.calculate_ip_checksum()
        p.calculate_udp_checksum()
        assert p.ip.verify_checksum()
        assert p.verify_udp_checksum()
        assert pkt.classify() == "udp4"
