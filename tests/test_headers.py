"""Tests for the declarative header field framework and all header types."""

import pytest
from hypothesis import given, strategies as st

from repro.packet.arp import ArpHeader, ArpOp
from repro.packet.esp import EspHeader
from repro.packet.ethernet import EtherType, EthernetHeader
from repro.packet.fields import Header
from repro.packet.icmp import IcmpHeader, IcmpType
from repro.packet.ip4 import Ip4Header, IpProtocol
from repro.packet.ip6 import Ip6Header
from repro.packet.ptp import PTP_UDP_PORT, PtpHeader, PtpMessageType
from repro.packet.tcp import TcpFlags, TcpHeader
from repro.packet.udp import UdpHeader


def buf(size=128):
    return bytearray(size)


class TestFramework:
    def test_header_needs_room(self):
        with pytest.raises(ValueError):
            EthernetHeader(bytearray(10))

    def test_header_at_offset(self):
        data = buf()
        eth = EthernetHeader(data, 4)
        eth.ether_type = 0x0800
        assert data[16] == 0x08 and data[17] == 0x00

    def test_raw(self):
        data = buf()
        eth = EthernetHeader(data)
        assert eth.raw() == bytes(14)

    def test_repr_contains_fields(self):
        eth = EthernetHeader(buf())
        assert "ether_type" in repr(eth)

    def test_uint_field_masks(self):
        udp = UdpHeader(buf())
        udp.src_port = 0x1FFFF  # wider than 16 bits
        assert udp.src_port == 0xFFFF


class TestEthernet:
    def test_addresses(self):
        eth = EthernetHeader(buf())
        eth.src = "02:00:00:00:00:01"
        eth.dst = "10:11:12:13:14:15"
        assert str(eth.src) == "02:00:00:00:00:01"
        assert str(eth.dst) == "10:11:12:13:14:15"

    def test_ethertype_constants(self):
        assert EtherType.PTP == 0x88F7
        assert EtherType.IP4 == 0x0800
        assert EtherType.IP6 == 0x86DD


class TestIp4:
    def test_defaults(self):
        ip = Ip4Header(buf())
        ip.set_defaults()
        assert ip.version == 4 and ip.ihl == 5 and ip.ttl == 64

    def test_version_ihl_share_byte(self):
        data = buf()
        ip = Ip4Header(data)
        ip.version = 4
        ip.ihl = 5
        assert data[0] == 0x45

    def test_fragment_offset_spans_bytes(self):
        ip = Ip4Header(buf())
        ip.flags = 0b010
        ip.fragment_offset = 0x1234 & 0x1FFF
        assert ip.fragment_offset == 0x1234 & 0x1FFF
        assert ip.flags == 0b010  # unaffected by offset write

    def test_checksum_roundtrip(self):
        ip = Ip4Header(buf())
        ip.set_defaults()
        ip.src = "10.0.0.1"
        ip.dst = "10.0.0.2"
        ip.length = 60
        ip.protocol = IpProtocol.UDP
        ip.calculate_checksum()
        assert ip.verify_checksum()

    def test_checksum_detects_corruption(self):
        data = buf()
        ip = Ip4Header(data)
        ip.set_defaults()
        ip.calculate_checksum()
        data[8] ^= 0xFF  # flip the TTL
        assert not ip.verify_checksum()

    def test_header_length(self):
        ip = Ip4Header(buf())
        ip.ihl = 5
        assert ip.header_length() == 20

    @given(st.integers(min_value=0, max_value=255))
    def test_tos_roundtrip(self, value):
        ip = Ip4Header(buf())
        ip.tos = value
        assert ip.tos == value


class TestIp6:
    def test_defaults(self):
        ip = Ip6Header(buf())
        ip.set_defaults()
        assert ip.version == 6 and ip.hop_limit == 64

    def test_traffic_class_straddles_bytes(self):
        data = buf()
        ip = Ip6Header(data)
        ip.version = 6
        ip.traffic_class = 0xAB
        assert ip.traffic_class == 0xAB
        assert ip.version == 6

    def test_flow_label(self):
        ip = Ip6Header(buf())
        ip.version = 6
        ip.traffic_class = 0xFF
        ip.flow_label = 0xABCDE
        assert ip.flow_label == 0xABCDE
        assert ip.traffic_class == 0xFF

    def test_addresses(self):
        ip = Ip6Header(buf())
        ip.src = "2001:db8::1"
        ip.dst = "2001:db8::2"
        assert str(ip.src) == "2001:db8::1"
        assert str(ip.dst) == "2001:db8::2"

    @given(st.integers(min_value=0, max_value=0xFFFFF))
    def test_flow_label_roundtrip(self, value):
        ip = Ip6Header(buf())
        ip.flow_label = value
        assert ip.flow_label == value


class TestUdp:
    def test_ports(self):
        udp = UdpHeader(buf())
        udp.set_src_port(1234)
        udp.set_dst_port(319)
        assert udp.get_src_port() == 1234
        assert udp.get_dst_port() == 319

    def test_checksum_never_zero(self):
        # RFC 768: an all-zero checksum is transmitted as 0xFFFF.
        udp = UdpHeader(buf(8))
        value = udp.calculate_checksum(0, bytes(8))
        assert value == 0xFFFF


class TestTcp:
    def test_defaults(self):
        tcp = TcpHeader(buf())
        tcp.set_defaults()
        assert tcp.data_offset == 5
        assert tcp.header_length() == 20

    def test_flags(self):
        tcp = TcpHeader(buf())
        tcp.set_flag(TcpFlags.SYN)
        tcp.set_flag(TcpFlags.ACK)
        assert tcp.has_flag(TcpFlags.SYN) and tcp.has_flag(TcpFlags.ACK)
        tcp.set_flag(TcpFlags.SYN, False)
        assert not tcp.has_flag(TcpFlags.SYN)
        assert tcp.has_flag(TcpFlags.ACK)

    def test_seq_ack(self):
        tcp = TcpHeader(buf())
        tcp.seq_number = 0xDEADBEEF
        tcp.ack_number = 0x01020304
        assert tcp.seq_number == 0xDEADBEEF
        assert tcp.ack_number == 0x01020304


class TestIcmp:
    def test_echo_fields(self):
        icmp = IcmpHeader(buf())
        icmp.type = IcmpType.ECHO_REQUEST
        icmp.identifier = 77
        icmp.sequence = 3
        assert (icmp.type, icmp.identifier, icmp.sequence) == (8, 77, 3)

    def test_checksum(self):
        data = buf(8)
        icmp = IcmpHeader(data)
        icmp.type = IcmpType.ECHO_REQUEST
        icmp.calculate_checksum(bytes(data[:8]))
        from repro.packet.checksum import internet_checksum
        assert internet_checksum(data[:8]) == 0


class TestArp:
    def test_defaults(self):
        arp = ArpHeader(buf())
        arp.set_defaults()
        assert arp.hardware_type == 1
        assert arp.protocol_type == 0x0800
        assert arp.operation == ArpOp.REQUEST

    def test_addresses(self):
        arp = ArpHeader(buf())
        arp.sha = "02:00:00:00:00:01"
        arp.spa = "10.0.0.1"
        arp.tha = "ff:ff:ff:ff:ff:ff"
        arp.tpa = "10.0.0.2"
        assert str(arp.spa) == "10.0.0.1"
        assert str(arp.tpa) == "10.0.0.2"


class TestPtp:
    def test_defaults(self):
        ptp = PtpHeader(buf())
        ptp.set_defaults()
        assert ptp.version == 2
        assert ptp.message_type == PtpMessageType.SYNC
        assert ptp.message_length == PtpHeader.SIZE

    def test_sequence(self):
        ptp = PtpHeader(buf())
        ptp.sequence_id = 0xBEEF
        assert ptp.sequence_id == 0xBEEF

    def test_type_and_transport_share_byte(self):
        data = buf()
        ptp = PtpHeader(data)
        ptp.transport_specific = 0xF
        ptp.message_type = PtpMessageType.DELAY_REQ
        assert data[0] == 0xF1

    def test_udp_port_constant(self):
        assert PTP_UDP_PORT == 319


class TestEsp:
    def test_fields(self):
        esp = EspHeader(buf())
        esp.set_defaults()
        esp.spi = 0xCAFEBABE
        esp.sequence = 42
        assert esp.spi == 0xCAFEBABE
        assert esp.sequence == 42
