"""Tests for MAC / IPv4 / IPv6 address types."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.packet.address import (
    Ip4Address,
    Ip6Address,
    MacAddress,
    parse_ip_address,
)


class TestMacAddress:
    def test_parse_string(self):
        mac = MacAddress("10:11:12:13:14:15")
        assert int(mac) == 0x101112131415

    def test_str_roundtrip(self):
        text = "aa:bb:cc:dd:ee:ff"
        assert str(MacAddress(text)) == text

    def test_from_bytes(self):
        assert MacAddress(b"\x01\x02\x03\x04\x05\x06") == 0x010203040506

    def test_to_bytes(self):
        assert MacAddress("01:02:03:04:05:06").to_bytes() == bytes(range(1, 7))

    def test_arithmetic_wraps(self):
        assert MacAddress("ff:ff:ff:ff:ff:ff") + 1 == MacAddress(0)
        assert MacAddress(0) - 1 == MacAddress("ff:ff:ff:ff:ff:ff")

    def test_add_returns_mac(self):
        assert isinstance(MacAddress(5) + 1, MacAddress)

    def test_broadcast(self):
        assert MacAddress("ff:ff:ff:ff:ff:ff").is_broadcast
        assert not MacAddress("ff:ff:ff:ff:ff:fe").is_broadcast

    def test_multicast_bit(self):
        assert MacAddress("01:00:5e:00:00:01").is_multicast
        assert not MacAddress("02:00:00:00:00:01").is_multicast

    @pytest.mark.parametrize("bad", ["", "aa:bb", "gg:00:00:00:00:00",
                                     "aa-bb-cc-dd-ee-ff", "aa:bb:cc:dd:ee:ff:00"])
    def test_rejects_bad_strings(self, bad):
        with pytest.raises(AddressError):
            MacAddress(bad)

    def test_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            MacAddress(1 << 48)
        with pytest.raises(AddressError):
            MacAddress(-1)

    def test_rejects_wrong_byte_count(self):
        with pytest.raises(AddressError):
            MacAddress(b"\x00" * 5)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_string_roundtrip_property(self, value):
        assert int(MacAddress(str(MacAddress(value)))) == value


class TestIp4Address:
    def test_parse(self):
        assert int(Ip4Address("10.0.0.1")) == 0x0A000001

    def test_str(self):
        assert str(Ip4Address(0xC0A80101)) == "192.168.1.1"

    def test_arithmetic(self):
        assert Ip4Address("10.0.0.1") + 254 == Ip4Address("10.0.0.255")
        assert Ip4Address("10.0.1.0") - 1 == Ip4Address("10.0.0.255")

    def test_wraps(self):
        assert Ip4Address("255.255.255.255") + 1 == Ip4Address("0.0.0.0")

    def test_bytes_roundtrip(self):
        addr = Ip4Address("1.2.3.4")
        assert Ip4Address(addr.to_bytes()) == addr

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1",
                                     "a.b.c.d", "1..2.3", "-1.0.0.0"])
    def test_rejects_bad(self, bad):
        with pytest.raises(AddressError):
            Ip4Address(bad)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, value):
        assert int(Ip4Address(str(Ip4Address(value)))) == value


class TestIp6Address:
    def test_parse_full(self):
        addr = Ip6Address("2001:db8:0:0:0:0:0:1")
        assert int(addr) == (0x20010DB8 << 96) | 1

    def test_parse_elision(self):
        assert Ip6Address("2001:db8::1") == Ip6Address("2001:db8:0:0:0:0:0:1")

    def test_parse_loopback(self):
        assert int(Ip6Address("::1")) == 1

    def test_parse_all_zero(self):
        assert int(Ip6Address("::")) == 0

    def test_str_elides_longest_zero_run(self):
        assert str(Ip6Address("2001:db8:0:0:0:0:0:1")) == "2001:db8::1"

    def test_str_no_elision_needed(self):
        text = "1:2:3:4:5:6:7:8"
        assert str(Ip6Address(text)) == text

    def test_arithmetic(self):
        assert Ip6Address("::1") + 1 == Ip6Address("::2")

    def test_wraps(self):
        assert Ip6Address(Ip6Address.MAX) + 1 == Ip6Address(0)

    def test_bytes_roundtrip(self):
        addr = Ip6Address("fe80::1234")
        assert Ip6Address(addr.to_bytes()) == addr

    @pytest.mark.parametrize("bad", ["", ":::", "1:2", "2001:db8::1::2",
                                     "12345::1", "g::1"])
    def test_rejects_bad(self, bad):
        with pytest.raises(AddressError):
            Ip6Address(bad)

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_roundtrip_property(self, value):
        assert int(Ip6Address(str(Ip6Address(value)))) == value


class TestParseIpAddress:
    def test_dispatch_v4(self):
        assert isinstance(parse_ip_address("10.0.0.1"), Ip4Address)

    def test_dispatch_v6(self):
        assert isinstance(parse_ip_address("::1"), Ip6Address)

    def test_listing2_usage(self):
        # The paper's Listing 2: parseIPAddress("10.0.0.1") + random offset.
        base = parse_ip_address("10.0.0.1")
        assert str(base + 41) == "10.0.0.42"
