"""Determinism guarantees: identical seeds produce identical simulations.

The README promises reproducibility bit-for-bit; these tests pin it for
every stochastic subsystem (event ordering, cost-model noise, generator
models, jittery wires, timestamp sampling, the DuT fastpath).
"""

import numpy as np
import pytest

from repro import MoonGenEnv, Timestamper, units
from repro.dut import simulate_forwarder
from repro.generators import MoonGenHwRateModel, PktgenDpdkModel, ZsendModel
from repro.nicsim.link import COPPER_CAT5E, Cable


def run_line_rate(seed):
    env = MoonGenEnv(seed=seed)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)
    departures = []
    tx.port.tx_observers.append(lambda f, t: departures.append(t))

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
            pkt_length=60))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(60)
            bufs.charge_random_fields(2)
            yield queue.send(bufs)

    env.launch(slave, env, tx.get_tx_queue(0))
    env.wait_for_slaves(duration_ns=300_000)
    return departures, tx.tx_packets


def run_timestamping(seed):
    env = MoonGenEnv(seed=seed)
    a = env.config_device(0, tx_queues=1, rx_queues=1)
    b = env.config_device(1, tx_queues=1, rx_queues=1)
    env.connect(a, b, cable=Cable(COPPER_CAT5E, 10.0))
    ts = Timestamper(env, a.get_tx_queue(0), b, seed=seed)
    env.launch(ts.probe_task, 40, 10_000.0)
    env.wait_for_slaves(duration_ns=5_000_000)
    return list(ts.histogram.samples)


class TestDeterminism:
    def test_event_simulation_identical(self):
        a = run_line_rate(seed=17)
        b = run_line_rate(seed=17)
        assert a == b

    def test_different_seed_differs(self):
        a, _ = run_line_rate(seed=17)
        b, _ = run_line_rate(seed=18)
        assert a != b  # cost noise shifts the schedule

    def test_timestamping_identical(self):
        assert run_timestamping(seed=3) == run_timestamping(seed=3)

    @pytest.mark.parametrize("model_cls", [
        MoonGenHwRateModel, PktgenDpdkModel, ZsendModel,
    ])
    def test_generator_models_identical(self, model_cls):
        a = model_cls().departures_ns(750e3, 50_000, seed=9)
        b = model_cls().departures_ns(750e3, 50_000, seed=9)
        assert np.array_equal(a, b)

    def test_fastpath_identical(self):
        arrivals = MoonGenHwRateModel(
            speed_bps=units.SPEED_10G).departures_ns(1e6, 20_000, seed=5)
        a = simulate_forwarder(arrivals)
        b = simulate_forwarder(arrivals)
        assert np.array_equal(a.departures_ns, b.departures_ns, equal_nan=True)
        assert a.interrupts == b.interrupts
