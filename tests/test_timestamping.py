"""Tests for clock synchronisation, drift, and the latency-probe engine."""

import random

import pytest

from repro import MoonGenEnv, Timestamper
from repro.core.timestamping import (
    clock_difference_ns,
    measure_drift,
    sync_clocks,
)
from repro.errors import TimestampingError
from repro.nicsim.clock import NicClock
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Cable, FIBER_OM3
from repro.nicsim.nic import CHIP_82599, CHIP_X540, CHIP_XL710


class TestClockSync:
    def test_sync_within_one_tick(self):
        """Section 6.2: synchronisation error is ±1 clock cycle (6.4 ns)."""
        loop = EventLoop()
        a = NicClock(loop, tick_ns=6.4, offset_ns=12345.6)
        b = NicClock(loop, tick_ns=6.4, offset_ns=-789.0)
        rng = random.Random(0)
        sync_clocks(a, b, rng)
        residual = a.raw_time_ns() - b.raw_time_ns()
        assert abs(residual) <= 6.4 + 1e-6

    def test_sync_robust_to_outliers(self):
        """5 % outlier reads must not corrupt the median of 7."""
        loop = EventLoop()
        worst = 0.0
        for seed in range(50):
            a = NicClock(loop, tick_ns=6.4, offset_ns=1000.0)
            b = NicClock(loop, tick_ns=6.4)
            sync_clocks(a, b, random.Random(seed))
            worst = max(worst, abs(a.raw_time_ns() - b.raw_time_ns()))
        assert worst <= 2 * 6.4  # no outlier-driven gross error

    def test_difference_measures_offset(self):
        loop = EventLoop()
        a = NicClock(loop, tick_ns=6.4, offset_ns=500.0)
        b = NicClock(loop, tick_ns=6.4, offset_ns=100.0)
        diff = clock_difference_ns(a, b, random.Random(1))
        assert diff == pytest.approx(400.0, abs=10.0)

    def test_two_port_accuracy_budget(self):
        """Worst case for two synchronized ports: 19.2 ns (Section 6.2)."""
        loop = EventLoop()
        rng = random.Random(3)
        errors = []
        for seed in range(30):
            a = NicClock(loop, tick_ns=6.4, offset_ns=rng.uniform(-1e4, 1e4))
            b = NicClock(loop, tick_ns=6.4)
            sync_clocks(a, b, random.Random(seed + 100))
            errors.append(abs(a.raw_time_ns() - b.raw_time_ns()))
        assert max(errors) <= 19.2


class TestDrift:
    def test_measures_configured_drift(self):
        """The paper's worst case: 35 µs/s between two NICs."""
        loop = EventLoop()
        a = NicClock(loop, tick_ns=6.4, drift_ppm=35.0)
        b = NicClock(loop, tick_ns=6.4, drift_ppm=0.0)
        drift = measure_drift(a, b, random.Random(0))
        assert drift == pytest.approx(35.0, abs=0.5)

    def test_no_drift_between_identical_clocks(self):
        loop = EventLoop()
        a = NicClock(loop, tick_ns=6.4)
        b = NicClock(loop, tick_ns=6.4)
        drift = measure_drift(a, b, random.Random(0))
        assert abs(drift) < 0.5

    def test_resync_bounds_drift_error(self):
        """Resyncing per probe turns 35 µs/s into a ~0.0035 % error."""
        env = MoonGenEnv(seed=2)
        a = env.config_device(0, tx_queues=1, rx_queues=1,
                              clock_drift_ppm=35.0)
        b = env.config_device(1, tx_queues=1, rx_queues=1)
        env.connect(a, b, cable=Cable(FIBER_OM3, 2.0))
        ts = Timestamper(env, a.get_tx_queue(0), b, seed=1)
        env.launch(ts.probe_task, 50, 10_000.0)
        env.wait_for_slaves(duration_ns=5_000_000)
        assert len(ts.histogram) == 50
        # True latency 320 ns; drift-free measurement despite 35 ppm.
        assert ts.histogram.median() == pytest.approx(320.0, abs=13.0)


class TestTimestamper:
    def test_requires_hw_timestamping(self):
        env = MoonGenEnv()
        a = env.config_device(0, tx_queues=1, chip=CHIP_XL710)
        b = env.config_device(1, rx_queues=1, chip=CHIP_XL710)
        with pytest.raises(TimestampingError):
            Timestamper(env, a.get_tx_queue(0), b)

    def test_udp_probe_size_restriction(self):
        """Section 6.4: UDP PTP probes below 80 B are refused."""
        env = MoonGenEnv()
        a = env.config_device(0, tx_queues=1)
        b = env.config_device(1, rx_queues=1)
        env.connect(a, b)
        with pytest.raises(TimestampingError):
            Timestamper(env, a.get_tx_queue(0), b, udp=True, pkt_size=76)

    def test_udp_probe_80b_ok(self):
        env = MoonGenEnv()
        a = env.config_device(0, tx_queues=1)
        b = env.config_device(1, rx_queues=1)
        env.connect(a, b)
        ts = Timestamper(env, a.get_tx_queue(0), b, udp=True, pkt_size=80)
        env.launch(ts.probe_task, 10, 10_000.0)
        env.wait_for_slaves(duration_ns=2_000_000)
        assert len(ts.histogram) == 10

    def test_ethernet_probes_loopback(self):
        env = MoonGenEnv(seed=4)
        a = env.config_device(0, tx_queues=1, chip=CHIP_82599)
        b = env.config_device(1, rx_queues=1, chip=CHIP_82599)
        env.connect(a, b, cable=Cable(FIBER_OM3, 8.5))
        ts = Timestamper(env, a.get_tx_queue(0), b, seed=7)
        env.launch(ts.probe_task, 100, 10_000.0)
        env.wait_for_slaves(duration_ns=5_000_000)
        assert len(ts.histogram) == 100
        assert ts.lost_probes == 0
        # Section 6.1: the 8.5 m fiber shows the 345.6/358.4 bimodality.
        values = set(round(v, 1) for v in ts.histogram.samples)
        assert values <= {332.8, 345.6, 358.4, 371.2}
        assert len(values) >= 2

    def test_x540_phy_jitter_spread(self):
        from repro.nicsim.link import COPPER_CAT5E
        env = MoonGenEnv(seed=6)
        a = env.config_device(0, tx_queues=1, chip=CHIP_X540)
        b = env.config_device(1, rx_queues=1, chip=CHIP_X540)
        env.connect(a, b, cable=Cable(COPPER_CAT5E, 10.0))
        ts = Timestamper(env, a.get_tx_queue(0), b, seed=8)
        env.launch(ts.probe_task, 300, 5_000.0)
        env.wait_for_slaves(duration_ns=10_000_000)
        h = ts.histogram
        med = h.median()
        assert med == pytest.approx(2195.2, abs=7.0)
        # ±6.4 ns of the median covers >99.5 % (Section 6.1); the epsilon
        # absorbs float rounding on the exact grid boundary.
        within = h.fraction_within(med, 6.4 + 1e-6)
        assert within > 0.95
        assert h.max() - h.min() <= 64.0  # total range (Section 6.1)
