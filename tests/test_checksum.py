"""Tests for checksums and the Ethernet FCS."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.packet import checksum as ck


class TestInternetChecksum:
    def test_known_vector(self):
        # Classic RFC 1071 example header.
        data = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
        # Zero the checksum field (bytes 10-11) and recompute.
        zeroed = data[:10] + b"\x00\x00" + data[12:]
        assert ck.internet_checksum(zeroed) == 0xB861

    def test_validates_to_zero(self):
        data = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
        assert ck.internet_checksum(data) == 0

    def test_odd_length_padding(self):
        # Odd-length buffers are padded with a zero byte.
        assert ck.internet_checksum(b"\x12") == ck.internet_checksum(b"\x12\x00")

    def test_empty(self):
        assert ck.internet_checksum(b"") == 0xFFFF

    @given(st.binary(min_size=0, max_size=256))
    def test_verification_property(self, payload):
        """Appending the computed checksum makes the total sum validate."""
        value = ck.internet_checksum(payload)
        if len(payload) % 2:
            # Insert at even offset to keep word alignment.
            payload = payload + b"\x00"
        combined = payload + struct.pack(">H", value)
        assert ck.internet_checksum(combined) == 0

    @given(st.binary(min_size=2, max_size=64))
    def test_checksum_range(self, payload):
        assert 0 <= ck.internet_checksum(payload) <= 0xFFFF


class TestPseudoHeader:
    def test_v4_sum_parts(self):
        total = ck.pseudo_header_sum_v4(0x0A000001, 0x0A000002, 17, 20)
        assert total == 0x0A00 + 0x0001 + 0x0A00 + 0x0002 + 17 + 20

    def test_v6_includes_full_addresses(self):
        # The top 16-bit word of the source address participates in the sum.
        small = ck.pseudo_header_sum_v6(1, 2, 17, 8)
        big = ck.pseudo_header_sum_v6(3 << 112, 2, 17, 8)
        assert big - small == 3 - 1

    def test_full_checksum_differs_by_protocol(self):
        payload = b"\x00" * 16
        a = ck.pseudo_header_checksum(1, 2, 6, payload)
        b = ck.pseudo_header_checksum(1, 2, 17, payload)
        assert a != b


class TestFcs:
    def test_known_crc(self):
        assert ck.ethernet_fcs(b"123456789") == 0xCBF43926

    def test_check_fcs_roundtrip(self):
        frame = bytearray(b"\x01" * 60)
        full = bytes(frame) + ck.fcs_bytes(frame)
        assert ck.check_fcs(full)

    def test_corrupt_fcs_invalidates(self):
        frame = bytearray(b"\x01" * 60)
        full = bytearray(bytes(frame) + ck.fcs_bytes(frame))
        ck.corrupt_fcs(full)
        assert not ck.check_fcs(full)

    def test_corrupt_requires_room(self):
        with pytest.raises(ValueError):
            ck.corrupt_fcs(bytearray(b"ab"))

    def test_check_fcs_short_frame(self):
        assert not ck.check_fcs(b"abc")

    @given(st.binary(min_size=14, max_size=128))
    def test_fcs_property(self, body):
        full = bytes(body) + ck.fcs_bytes(body)
        assert ck.check_fcs(full)
        tampered = bytearray(full)
        tampered[0] ^= 0x01
        assert not ck.check_fcs(tampered)
