"""Tests for the ARP responder/resolver task."""

import pytest

from repro import MoonGenEnv
from repro.core.arp import ArpResponder
from repro.packet.arp import ArpOp


def two_hosts():
    env = MoonGenEnv(seed=2)
    a = env.config_device(0, tx_queues=1, rx_queues=1)
    b = env.config_device(1, tx_queues=1, rx_queues=1)
    env.connect(a, b)
    return env, a, b


class TestArpResponder:
    def test_answers_request_for_owned_address(self):
        env, a, b = two_hosts()
        responder = ArpResponder(env, b, ["10.0.0.2"])
        env.launch(responder.task)

        def requester(env, queue):
            pool = env.create_mempool(n_buffers=8, buf_capacity=128)
            bufs = pool.buf_array(1)
            bufs.alloc(60)
            ArpResponder(env, a, []).craft_request(
                bufs[0], "10.0.0.2", "10.0.0.1")
            yield queue.send(bufs)
            # Wait for the reply to land.
            got = []
            rx_bufs = pool.buf_array(4)
            while env.running() and not got:
                n = yield a.get_rx_queue(0).recv(rx_bufs, timeout_ns=500_000)
                for i in range(n):
                    pkt = rx_bufs[i].pkt
                    if pkt.classify() == "arp":
                        arp = pkt.arp_packet.arp
                        if arp.operation == ArpOp.REPLY:
                            got.append((str(arp.sha), str(arp.spa)))
                rx_bufs.free_all()
            return got

        task = env.launch(requester, env, a.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=5_000_000)
        assert task.result == [(str(b.mac), "10.0.0.2")]
        assert responder.requests_answered == 1

    def test_ignores_unowned_address(self):
        env, a, b = two_hosts()
        responder = ArpResponder(env, b, ["10.0.0.2"])
        env.launch(responder.task)

        def requester(env, queue):
            pool = env.create_mempool(n_buffers=8, buf_capacity=128)
            bufs = pool.buf_array(1)
            bufs.alloc(60)
            ArpResponder(env, a, []).craft_request(
                bufs[0], "10.0.0.99", "10.0.0.1")
            yield queue.send(bufs)

        env.launch(requester, env, a.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=3_000_000)
        assert responder.requests_answered == 0
        assert a.rx_packets == 0

    def test_resolve_roundtrip(self):
        """Host A resolves host B's MAC through request/reply."""
        env, a, b = two_hosts()
        responder_b = ArpResponder(env, b, ["10.0.0.2"])
        resolver_a = ArpResponder(env, a, ["10.0.0.1"])
        env.launch(responder_b.task)
        env.launch(resolver_a.task)
        resolve = env.launch(
            resolver_a.resolve_task, "10.0.0.2", "10.0.0.1"
        )
        env.wait_for_slaves(duration_ns=8_000_000)
        assert resolve.result == b.mac
        assert resolver_a.lookup("10.0.0.2") == b.mac

    def test_resolve_times_out_without_peer(self):
        env, a, b = two_hosts()
        resolver = ArpResponder(env, a, ["10.0.0.1"])
        env.launch(resolver.task)
        resolve = env.launch(
            resolver.resolve_task, "10.0.0.50", "10.0.0.1",
        )
        env.wait_for_slaves(duration_ns=8_000_000)
        assert resolve.result is None

    def test_learns_from_gratuitous_reply(self):
        env, a, b = two_hosts()
        resolver = ArpResponder(env, a, ["10.0.0.1"])
        env.launch(resolver.task)

        def announcer(env, queue):
            pool = env.create_mempool(n_buffers=8, buf_capacity=128)
            bufs = pool.buf_array(1)
            bufs.alloc(60)
            bufs[0].pkt.arp_packet.fill(
                eth_src=b.mac, eth_dst="ff:ff:ff:ff:ff:ff",
                arp_operation=ArpOp.REPLY,
                arp_hw_src=b.mac, arp_proto_src="10.0.0.7",
            )
            yield queue.send(bufs)

        env.launch(announcer, env, b.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=3_000_000)
        assert resolver.lookup("10.0.0.7") == b.mac
        assert resolver.replies_seen == 1
