"""Tests for the generator departure-time models (Table 4 calibration)."""

import numpy as np
import pytest

from repro import units
from repro.analysis import measure_interarrival
from repro.core.ratecontrol import PoissonPattern
from repro.generators import (
    MoonGenCrcGapModel,
    MoonGenHwRateModel,
    PktgenDpdkModel,
    ZsendModel,
    enforce_wire_spacing,
)
from repro.generators.base import wire_gap_ns

N = 100_000


def stats_for(model, pps, n=N, seed=42):
    departures = model.departures_ns(pps, n, seed=seed)
    return measure_interarrival(departures, pps, model.name)


class TestEnforceWireSpacing:
    def test_clamps_to_floor(self):
        gaps = enforce_wire_spacing(np.array([100.0, 2000.0, 3000.0]))
        assert gaps.min() >= wire_gap_ns() - 1e-9

    def test_preserves_total_time(self):
        raw = np.array([100.0, 2000.0, 3000.0, 4000.0])
        fixed = enforce_wire_spacing(raw)
        assert fixed.sum() == pytest.approx(raw.sum(), rel=1e-6)

    def test_untouched_when_legal(self):
        raw = np.array([1000.0, 2000.0])
        assert np.array_equal(enforce_wire_spacing(raw), raw)

    def test_bulk_untouched_by_redistribution(self):
        """Deficit absorption must not shift the central lobe."""
        raw = np.full(1000, 1000.0)
        raw[0] = 100.0  # one clamp needed
        fixed = enforce_wire_spacing(raw)
        assert np.sum(fixed == 1000.0) >= 990


class TestCommonInvariants:
    @pytest.mark.parametrize("model_cls", [
        MoonGenHwRateModel, PktgenDpdkModel, ZsendModel,
    ])
    @pytest.mark.parametrize("pps", [500e3, 750e3, 1000e3])
    def test_mean_rate_accurate(self, model_cls, pps):
        """All generators are rate-accurate; they differ in precision."""
        gaps = model_cls().gaps_ns(pps, N, seed=1)
        assert gaps.mean() == pytest.approx(1e9 / pps, rel=0.01)

    @pytest.mark.parametrize("model_cls", [
        MoonGenHwRateModel, PktgenDpdkModel, ZsendModel,
    ])
    def test_no_gap_below_wire_time(self, model_cls):
        gaps = model_cls().gaps_ns(1e6, N, seed=2)
        assert gaps.min() >= wire_gap_ns() - 1e-9

    @pytest.mark.parametrize("model_cls", [
        MoonGenHwRateModel, PktgenDpdkModel, ZsendModel,
    ])
    def test_reproducible(self, model_cls):
        a = model_cls().gaps_ns(500e3, 1000, seed=9)
        b = model_cls().gaps_ns(500e3, 1000, seed=9)
        assert np.array_equal(a, b)

    def test_departures_monotone(self):
        dep = ZsendModel().departures_ns(1e6, 10_000, seed=3)
        assert np.all(np.diff(dep) > 0)

    def test_departures_start(self):
        dep = MoonGenHwRateModel().departures_ns(1e6, 10, start_ns=500.0)
        assert dep[0] == 500.0


class TestTable4MoonGen:
    """Paper values: 500 kpps: 0.02 % bursts, 49.9/74.9/99.8/99.8 %;
    1000 kpps: 1.2 % bursts, 50.5/52/97/100 %."""

    def test_500kpps(self):
        s = stats_for(MoonGenHwRateModel(), 500e3)
        assert s.micro_burst_fraction == pytest.approx(0.0002, abs=0.0004)
        assert s.within[64.0] == pytest.approx(0.499, abs=0.05)
        assert s.within[128.0] == pytest.approx(0.749, abs=0.05)
        assert s.within[256.0] == pytest.approx(0.998, abs=0.01)

    def test_1000kpps(self):
        s = stats_for(MoonGenHwRateModel(), 1000e3)
        assert s.micro_burst_fraction == pytest.approx(0.012, abs=0.01)
        assert s.within[64.0] == pytest.approx(0.505, abs=0.05)
        assert s.within[128.0] == pytest.approx(0.52, abs=0.06)
        assert s.within[256.0] == pytest.approx(0.97, abs=0.03)

    def test_oscillation_bounded(self):
        """Section 7.3: oscillates around the target by up to ~256 ns."""
        s = stats_for(MoonGenHwRateModel(), 500e3)
        assert s.within[256.0] > 0.99


class TestTable4Pktgen:
    """Paper: 500 kpps: 0.01 % bursts, 37.7/72.3/92/94.5 %;
    1000 kpps: 14.2 % bursts, 36.7/58/70.6/95.9 %."""

    def test_500kpps(self):
        s = stats_for(PktgenDpdkModel(), 500e3)
        assert s.micro_burst_fraction < 0.005
        assert s.within[64.0] == pytest.approx(0.377, abs=0.06)
        assert s.within[128.0] == pytest.approx(0.723, abs=0.08)
        assert s.within[512.0] == pytest.approx(0.945, abs=0.03)

    def test_1000kpps_bursts(self):
        s = stats_for(PktgenDpdkModel(), 1000e3)
        assert s.micro_burst_fraction == pytest.approx(0.142, abs=0.02)
        assert s.within[64.0] == pytest.approx(0.367, abs=0.06)

    def test_bursts_grow_with_rate(self):
        low = stats_for(PktgenDpdkModel(), 500e3)
        high = stats_for(PktgenDpdkModel(), 1000e3)
        assert high.micro_burst_fraction > 10 * low.micro_burst_fraction


class TestTable4Zsend:
    """Paper: 500 kpps: 28.6 % bursts, only 13.8 % within ±512 ns;
    1000 kpps: 52 % bursts."""

    def test_500kpps_bursts(self):
        s = stats_for(ZsendModel(), 500e3)
        assert s.micro_burst_fraction == pytest.approx(0.286, abs=0.05)
        assert s.within[64.0] < 0.10
        assert s.within[512.0] < 0.35

    def test_1000kpps_bursts(self):
        s = stats_for(ZsendModel(), 1000e3)
        assert s.micro_burst_fraction == pytest.approx(0.52, abs=0.06)

    def test_zsend_worst_precision(self):
        """Figure 8's story: zsend is far worse than both alternatives."""
        for pps in (500e3, 1000e3):
            z = stats_for(ZsendModel(), pps)
            m = stats_for(MoonGenHwRateModel(), pps)
            p = stats_for(PktgenDpdkModel(), pps)
            assert z.within[64.0] < p.within[64.0] < m.within[64.0] + 0.2
            # Paper ratios: 28.6 vs 0.01 % at 500 k, 52 vs 14.2 % at 1000 k.
            assert z.micro_burst_fraction > 3 * p.micro_burst_fraction


class TestOrdering:
    def test_moongen_most_precise(self):
        """The headline of Table 4: hardware rate control wins."""
        for pps in (500e3, 1000e3):
            m = stats_for(MoonGenHwRateModel(), pps, n=50_000)
            p = stats_for(PktgenDpdkModel(), pps, n=50_000)
            assert m.within[64.0] > p.within[64.0]
            assert m.micro_burst_fraction <= p.micro_burst_fraction + 0.001


class TestCrcGapModel:
    def test_cbr_near_perfect(self):
        """Section 8: the CRC method beats even hardware rate control."""
        model = MoonGenCrcGapModel()
        s = measure_interarrival(
            model.departures_ns(1e6, 50_000), 1e6, "crc",
            speed_bps=units.SPEED_10G,
        )
        assert s.within[64.0] > 0.999
        assert s.micro_burst_fraction < 0.001

    def test_pattern_support(self):
        model = MoonGenCrcGapModel()
        dep = model.departures_for_pattern(PoissonPattern(1e6, seed=4), 20_000)
        gaps = np.diff(dep)
        assert gaps.mean() == pytest.approx(1000.0, rel=0.02)
        # Exponential shape survives the filler quantization.
        assert gaps.std() == pytest.approx(gaps.mean(), rel=0.1)

    def test_skip_and_stretch_precision(self):
        """±30 ns worst case for unrepresentable gaps (Section 8.4)."""
        model = MoonGenCrcGapModel()
        gaps = model.gaps_ns(10e6, 10_000)  # 100 ns gaps: 32.8 ns idle
        deviation = np.abs(gaps - 100.0)
        assert deviation.max() <= 61.0
        assert gaps.mean() == pytest.approx(100.0, rel=0.01)
