"""Tests for MoonGenEnv and Device configuration."""

import pytest

from repro import MoonGenEnv
from repro.errors import DeviceError, QueueError
from repro.nicsim.nic import CHIP_82580, CHIP_XL710, NicCard


class TestConfigDevice:
    def test_basic_config(self):
        env = MoonGenEnv()
        dev = env.config_device(0, rx_queues=1, tx_queues=2)
        assert dev.port_id == 0
        assert dev.chip.name == "X540"
        assert dev.get_tx_queue(1) is not None

    def test_duplicate_port_rejected(self):
        env = MoonGenEnv()
        env.config_device(0)
        with pytest.raises(DeviceError):
            env.config_device(0)

    def test_unknown_queue_raises(self):
        env = MoonGenEnv()
        dev = env.config_device(0, tx_queues=1, rx_queues=1)
        with pytest.raises(QueueError):
            dev.get_tx_queue(1)
        with pytest.raises(QueueError):
            dev.get_rx_queue(1)

    def test_chip_selection(self):
        env = MoonGenEnv()
        dev = env.config_device(0, chip=CHIP_82580)
        assert dev.chip.name == "82580"
        assert dev.port.speed_bps == 10 ** 9

    def test_shared_card(self):
        env = MoonGenEnv()
        card = NicCard(CHIP_XL710)
        a = env.config_device(0, chip=CHIP_XL710, card=card)
        b = env.config_device(1, chip=CHIP_XL710, card=card)
        assert a.port.card is b.port.card

    def test_unique_macs(self):
        env = MoonGenEnv()
        a = env.config_device(0)
        b = env.config_device(1)
        assert a.mac != b.mac

    def test_wait_for_links_noop(self):
        MoonGenEnv().wait_for_links()

    def test_clock_drift_configured(self):
        env = MoonGenEnv()
        dev = env.config_device(0, clock_drift_ppm=35.0)
        assert dev.clock.drift_ppm == 35.0


class TestRunning:
    def test_running_until_horizon(self):
        env = MoonGenEnv()
        assert env.running()

        def slave(env):
            while env.running():
                yield env.sleep_us(10)
            return env.now_ns

        task = env.launch(slave, env)
        env.wait_for_slaves(duration_ns=100_000)
        assert task.result >= 100.0

    def test_stop_immediately(self):
        env = MoonGenEnv()
        env.stop()
        assert not env.running()

    def test_run_for_advances_clock(self):
        env = MoonGenEnv()
        env.run_for(5000.0)
        assert env.now_ns == pytest.approx(5000.0)


class TestLaunch:
    def test_each_task_gets_a_core(self):
        env = MoonGenEnv()

        def slave(env):
            yield env.sleep_ns(1)

        env.launch(slave, env)
        env.launch(slave, env)
        assert len(env.cores) == 2
        assert env.cores[0].core_id != env.cores[1].core_id

    def test_per_task_frequency(self):
        env = MoonGenEnv(core_freq_hz=2.4e9)

        def slave(env):
            yield env.charge_cycles(1200)
            return env.now_ns

        fast = env.launch(slave, env, freq_hz=2.4e9)
        slow = env.launch(slave, env, freq_hz=1.2e9)
        env.wait_for_slaves()
        assert slow.result == pytest.approx(2 * fast.result)

    def test_task_results_and_check(self):
        env = MoonGenEnv()

        def slave(env):
            yield env.sleep_ns(5)
            return 17

        task = env.launch(slave, env)
        env.wait_for_slaves()
        assert task.finished and task.result == 17
        task.check()  # no error


class TestWiring:
    def test_connect_is_full_duplex(self):
        env = MoonGenEnv()
        a = env.config_device(0, tx_queues=1, rx_queues=1)
        b = env.config_device(1, tx_queues=1, rx_queues=1)
        env.connect(a, b)

        def sender(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(2)
            bufs.alloc(60)
            yield queue.send(bufs)

        env.launch(sender, env, a.get_tx_queue(0))
        env.launch(sender, env, b.get_tx_queue(0))
        env.wait_for_slaves()
        assert a.rx_packets == 2 and b.rx_packets == 2

    def test_connect_to_sink(self):
        env = MoonGenEnv()
        dev = env.config_device(0)
        seen = []
        env.connect_to_sink(dev, lambda frame, t: seen.append(frame))

        def sender(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(3)
            bufs.alloc(60)
            yield queue.send(bufs)

        env.launch(sender, env, dev.get_tx_queue(0))
        env.wait_for_slaves()
        assert len(seen) == 3

    def test_wire_to_device(self):
        env = MoonGenEnv()
        dev = env.config_device(0, rx_queues=1)
        wire = env.wire_to_device(dev)
        from repro.nicsim.nic import SimFrame
        wire.transmit(SimFrame(b"\x00" * 60), 64)
        env.loop.run()
        assert dev.rx_packets == 1

    def test_device_counters(self):
        env = MoonGenEnv()
        a = env.config_device(0)
        b = env.config_device(1)
        env.connect(a, b)

        def sender(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(5)
            bufs.alloc(60)
            bufs[0].corrupt_fcs = True
            yield queue.send(bufs)

        env.launch(sender, env, a.get_tx_queue(0))
        env.wait_for_slaves()
        assert a.tx_packets == 5
        assert a.tx_bytes == 5 * 64
        assert b.rx_packets == 4
        assert b.rx_crc_errors == 1
        assert b.rx_missed == 0
