"""Tests for the device statistics monitor task."""

import io

import pytest

from repro import MoonGenEnv
from repro.core.monitor import DeviceStatsMonitor


def run_with_monitor(duration_ns=5_000_000, interval_ns=1_000_000):
    env = MoonGenEnv(seed=6)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)
    out = io.StringIO()
    monitor = DeviceStatsMonitor(env, tx, interval_ns=interval_ns,
                                 fmt="csv", stream=out)

    def slave(env, queue):
        mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
            pkt_length=60))
        bufs = mem.buf_array()
        while env.running():
            bufs.alloc(60)
            yield queue.send(bufs)

    env.launch(slave, env, tx.get_tx_queue(0))
    env.launch(monitor.task)
    env.wait_for_slaves(duration_ns=duration_ns)
    return env, tx, monitor, out


class TestDeviceStatsMonitor:
    def test_counts_match_device_registers(self):
        env, tx, monitor, out = run_with_monitor()
        # The monitor finalizes when running() turns false; the ring and the
        # on-chip FIFO keep draining for a moment afterwards.
        drain_allowance = 512 + 160 * 1024 // 64 + 63
        assert 0 <= tx.tx_packets - monitor.tx.total_packets <= drain_allowance
        assert monitor.tx.total_bytes == monitor.tx.total_packets * 64

    def test_samples_at_interval(self):
        env, tx, monitor, out = run_with_monitor(
            duration_ns=5_000_000, interval_ns=1_000_000)
        assert monitor.samples == 5

    def test_interval_rates_near_line_rate(self):
        env, tx, monitor, out = run_with_monitor()
        assert monitor.tx.interval_pps  # rolled at least one interval
        for pps in monitor.tx.interval_pps:
            assert pps == pytest.approx(14.88e6, rel=0.05)

    def test_csv_output_written(self):
        env, tx, monitor, out = run_with_monitor()
        text = out.getvalue()
        assert "dev0,TX" in text
        assert "total" in text

    def test_rx_side_zero_without_traffic(self):
        env, tx, monitor, out = run_with_monitor()
        assert monitor.rx.total_packets == 0  # nothing sent toward tx dev

    def test_finalize_does_not_double_count(self):
        """task() samples on exit and finalize() samples again; the counter
        deltas make the extra sample account zero new packets."""
        env, tx, monitor, out = run_with_monitor()
        # Totals must never exceed the device registers (each packet is
        # accounted at most once even though finalize re-sampled).
        assert monitor.tx.total_packets <= tx.tx_packets
        # The deltas telescope: the grand total equals the register value
        # seen at the last sample, so no packet was counted twice.
        assert monitor.tx.total_packets == monitor.tx._last_packets
        assert monitor.tx.total_bytes == monitor.tx._last_bytes

    def test_finalize_idempotent(self):
        env, tx, monitor, out = run_with_monitor()
        total_packets = monitor.tx.total_packets
        total_bytes = monitor.tx.total_bytes
        text_len = len(out.getvalue())
        monitor.finalize()  # second explicit call: must be a no-op
        monitor.finalize()
        assert monitor.tx.total_packets == total_packets
        assert monitor.tx.total_bytes == total_bytes
        assert len(out.getvalue()) == text_len  # no duplicate summary rows

    def test_explicit_finalize_before_task_exit(self):
        """finalize() called directly (no task) samples exactly once."""
        env = MoonGenEnv(seed=6)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        out = io.StringIO()
        monitor = DeviceStatsMonitor(env, tx, fmt="csv", stream=out)
        tx.port.tx_packets = 10
        tx.port.tx_bytes = 640
        monitor.finalize()
        assert monitor.tx.total_packets == 10
        monitor.finalize()
        assert monitor.tx.total_packets == 10


class TestPublishOnlyFormat:
    """``fmt="none"``: the monitor accounts totals but writes nothing."""

    def test_none_format_writes_nothing(self):
        env = MoonGenEnv(seed=6)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        out = io.StringIO()
        monitor = DeviceStatsMonitor(env, tx, interval_ns=1_000_000,
                                     fmt="none", stream=out)

        def slave(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60))
            bufs = mem.buf_array()
            while env.running():
                bufs.alloc(60)
                yield queue.send(bufs)

        env.launch(slave, env, tx.get_tx_queue(0))
        env.launch(monitor.task)
        env.wait_for_slaves(duration_ns=5_000_000)
        assert out.getvalue() == ""  # no header, no rows, no summary
        assert monitor.tx.total_packets > 0  # totals still accounted
        assert monitor.samples >= 4

    def test_unknown_format_still_rejected(self):
        env = MoonGenEnv(seed=6)
        tx = env.config_device(0, tx_queues=1)
        with pytest.raises(Exception, match="unknown stats format"):
            DeviceStatsMonitor(env, tx, fmt="wide")

    def test_none_format_publishes_into_registry(self):
        env = MoonGenEnv(seed=6, metrics=True)
        tx = env.config_device(0, tx_queues=1)
        monitor = DeviceStatsMonitor(env, tx, fmt="none")
        tx.port.tx_packets = 5
        tx.port.tx_bytes = 320
        monitor.finalize()
        assert env.metrics.get("monitor.dev0.tx.packets").read() == 5


class TestLinkGapDedup:
    """A link-flap gap is annotated once per sampling interval, not once
    per counter re-sample at the same instant."""

    def test_same_instant_resample_does_not_double_count(self):
        env = MoonGenEnv(seed=1)
        dev = env.config_device(0, tx_queues=1, rx_queues=1)
        monitor = DeviceStatsMonitor(env, dev, fmt="none")
        dev.port.set_link_state(False)
        monitor._check_link_gap()  # the interval sample annotates the flap
        assert len(monitor.gaps) == 1
        # finalize (and the rx counter sampling the same port) re-checks at
        # the same simulated instant: the outage must not count twice.
        monitor._check_link_gap()
        monitor.finalize()
        assert len(monitor.gaps) == 1

    def test_continuing_outage_annotated_per_interval(self):
        env = MoonGenEnv(seed=1)
        dev = env.config_device(0, tx_queues=1, rx_queues=1)
        monitor = DeviceStatsMonitor(env, dev, fmt="none")
        dev.port.set_link_state(False)
        monitor._check_link_gap()
        env.loop.now_ps += 1_000_000_000  # next sampling interval, still down
        monitor._check_link_gap()
        assert len(monitor.gaps) == 2
        assert monitor.gaps[1]["transitions"] == 0

    def test_recovered_link_records_the_transition(self):
        env = MoonGenEnv(seed=1)
        dev = env.config_device(0, tx_queues=1, rx_queues=1)
        monitor = DeviceStatsMonitor(env, dev, fmt="none")
        dev.port.set_link_state(False)
        env.loop.now_ps += 1_000_000_000
        dev.port.set_link_state(True)
        monitor._check_link_gap()
        assert len(monitor.gaps) == 1
        assert monitor.gaps[0]["transitions"] == 2
        assert monitor.gaps[0]["link_up"] is True
