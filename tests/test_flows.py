"""Tests for the varying-field helpers (random vs wrapping counter)."""

import pytest

from repro import MoonGenEnv
from repro.core.flows import (
    FieldCounter,
    FieldRandomizer,
    VaryingField,
    dst_ip_field,
    dst_port_field,
    payload_field,
    src_ip_field,
    src_mac_field,
    src_port_field,
)
from repro.errors import ConfigurationError


def batch(n=8, size=60):
    env = MoonGenEnv()
    pool = env.create_mempool(
        fill=lambda b: b.udp_packet.fill(pkt_length=size)
    )
    bufs = pool.buf_array(n)
    bufs.alloc(size)
    return bufs


class TestVaryingField:
    def test_rejects_empty_range(self):
        with pytest.raises(ConfigurationError):
            VaryingField("x", lambda b, i: None, 0)

    def test_src_ip_setter(self):
        bufs = batch(1)
        src_ip_field("10.0.0.1", 256).setter(bufs[0], 41)
        assert str(bufs[0].ip_packet.ip.src) == "10.0.0.42"

    def test_dst_ip_setter(self):
        bufs = batch(1)
        dst_ip_field("192.168.0.0", 16).setter(bufs[0], 7)
        assert str(bufs[0].ip_packet.ip.dst) == "192.168.0.7"

    def test_port_setters(self):
        bufs = batch(1)
        src_port_field(1000, 10).setter(bufs[0], 3)
        dst_port_field(2000, 10).setter(bufs[0], 4)
        udp = bufs[0].udp_packet.udp
        assert (udp.src_port, udp.dst_port) == (1003, 2004)

    def test_mac_setter(self):
        bufs = batch(1)
        src_mac_field("02:00:00:00:00:00", 256).setter(bufs[0], 0xAB)
        assert str(bufs[0].eth_packet.eth.src) == "02:00:00:00:00:ab"

    def test_payload_setter(self):
        bufs = batch(1)
        payload_field(42, width=4).setter(bufs[0], 0xDEADBEEF)
        assert bytes(bufs[0].pkt.data[42:46]) == b"\xde\xad\xbe\xef"


class TestFieldRandomizer:
    def test_mutates_within_range(self):
        bufs = batch(8)
        FieldRandomizer([src_ip_field("10.0.0.0", 4)], seed=1).apply(bufs)
        values = {int(b.ip_packet.ip.src) & 0xFF for b in bufs}
        assert values <= {0, 1, 2, 3}
        assert len(values) > 1  # actually varies

    def test_charges_ledger(self):
        bufs = batch(4)
        FieldRandomizer([src_ip_field("10.0.0.0"),
                         dst_port_field()], seed=2).apply(bufs)
        assert ("random", 2) in bufs.drain_ledger()

    def test_reproducible(self):
        a, b = batch(8), batch(8)
        FieldRandomizer([src_ip_field("10.0.0.0")], seed=3).apply(a)
        FieldRandomizer([src_ip_field("10.0.0.0")], seed=3).apply(b)
        assert [int(x.ip_packet.ip.src) for x in a] == \
            [int(x.ip_packet.ip.src) for x in b]

    def test_rejects_no_fields(self):
        with pytest.raises(ConfigurationError):
            FieldRandomizer([])


class TestFieldCounter:
    def test_wraps(self):
        bufs = batch(8)
        counter = FieldCounter([src_ip_field("10.0.0.0", 3)])
        counter.apply(bufs)
        values = [int(b.ip_packet.ip.src) & 0xFF for b in bufs]
        assert values == [0, 1, 2, 0, 1, 2, 0, 1]

    def test_continues_across_batches(self):
        counter = FieldCounter([dst_port_field(100, 1000)])
        a = batch(4)
        counter.apply(a)
        b = batch(4)
        counter.apply(b)
        ports = [x.udp_packet.udp.dst_port for x in b]
        assert ports == [104, 105, 106, 107]

    def test_charges_ledger(self):
        bufs = batch(4)
        FieldCounter([src_ip_field("10.0.0.0")]).apply(bufs)
        assert ("counter", 1) in bufs.drain_ledger()

    def test_independent_counters_per_field(self):
        bufs = batch(4)
        counter = FieldCounter([
            src_port_field(0, 2), dst_port_field(0, 5),
        ])
        counter.apply(bufs)
        src = [b.udp_packet.udp.src_port for b in bufs]
        dst = [b.udp_packet.udp.dst_port for b in bufs]
        assert src == [0, 1, 0, 1]
        assert dst == [0, 1, 2, 3]


class TestTimingDifference:
    def test_counter_script_faster_than_random(self):
        """The Table 2 conclusion as an end-to-end throughput difference."""
        def run(strategy_cls, fields):
            env = MoonGenEnv(seed=5, core_freq_hz=1.2e9)
            tx = env.config_device(0, tx_queues=1)
            rx = env.config_device(1, rx_queues=1)
            env.connect(tx, rx)
            strategy = (strategy_cls(fields, seed=1)
                        if strategy_cls is FieldRandomizer
                        else strategy_cls(fields))

            def slave(env, queue):
                mem = env.create_mempool(
                    fill=lambda b: b.udp_packet.fill(pkt_length=60))
                bufs = mem.buf_array()
                while env.running():
                    bufs.alloc(60)
                    strategy.apply(bufs)
                    yield queue.send(bufs)

            env.launch(slave, env, tx.get_tx_queue(0))
            env.wait_for_slaves(duration_ns=300_000)
            return tx.tx_packets / (env.now_ns / 1e9)

        fields = [src_ip_field("10.0.0.0"), dst_port_field(),
                  src_port_field(), payload_field(46)]
        random_pps = run(FieldRandomizer, fields)
        counter_pps = run(FieldCounter, fields)
        assert counter_pps > random_pps * 1.15
