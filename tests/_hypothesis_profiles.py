"""Shared Hypothesis settings profiles for the property-test suite.

Every property-test module used to carry its own ``SETTINGS`` dict with
the same two decisions (no deadline — whole-simulation examples are slow
and machine-dependent — and a hand-picked example count).  This module
centralizes those decisions as registered Hypothesis *profiles*:

* ``dev`` (default): the full example budgets, randomized — what a
  developer iterating locally wants.
* ``ci``: half the examples and ``derandomize=True``, so CI runs are
  faster and never flake on an unlucky draw; the nightly/dev runs keep
  exploring fresh inputs.

Select with ``HYPOTHESIS_PROFILE=ci`` (the CI workflow exports it; any
unknown value falls back to ``dev``).  Test modules size their budgets
relative to the dev default through :func:`property_settings`::

    from tests._hypothesis_profiles import property_settings

    SETTINGS = property_settings()        # standard: 40 dev / 20 ci
    HEAVY = property_settings(12)         # whole-sim: 12 dev / 6 ci

Importing this module (``tests/__init__.py`` does) registers and loads
the profiles exactly once.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from hypothesis import settings

#: The example budget a "standard" property test gets under ``dev``;
#: :func:`property_settings` scales every other budget off this anchor.
DEV_EXAMPLES = 40

settings.register_profile("dev", deadline=None, max_examples=DEV_EXAMPLES)
settings.register_profile("ci", deadline=None,
                          max_examples=DEV_EXAMPLES // 2,
                          derandomize=True)

PROFILE = os.environ.get("HYPOTHESIS_PROFILE", "dev")
if PROFILE not in ("dev", "ci"):
    PROFILE = "dev"
settings.load_profile(PROFILE)


def property_settings(dev_examples: int = DEV_EXAMPLES) -> Dict[str, Any]:
    """Kwargs for ``@settings(**...)``, scaled to the active profile.

    ``dev_examples`` is the budget the test deserves under the ``dev``
    profile; the active profile scales it proportionally (``ci`` halves
    it), never below one example.
    """
    scale = settings.default.max_examples / DEV_EXAMPLES
    return {
        "deadline": settings.default.deadline,
        "max_examples": max(1, round(dev_examples * scale)),
    }
