"""Differential equivalence harness: batch tier vs event-by-event.

The batch tier (``repro.batch``) promises *bit-identical* results: every
train it executes arithmetically produces exactly the values the discrete
loop would have produced.  This module is the harness that makes the
claim falsifiable.  :func:`assert_batch_equivalent` runs one scenario
twice — ``batch=False`` then ``batch=True`` — and deep-diffs everything
observable: result dicts, per-device and per-queue counters, DuT
counters, metrics fingerprints (``loop.*`` excluded — scheduler
self-accounting legitimately changes), and golden traces.  Any mismatch
fails with a per-key diff rather than a bare ``assert a == b``.

Scenarios cover every kernel and every fallback family:

* quickstart (saturating CBR — the unpaced FIFO kernel),
* hardware CBR (``set_rate_pps`` — the paced ring kernel),
* Poisson and uniform-burst patterns through CRC-gap rate control,
* load-latency through the OvS DuT (``sink-unbatchable`` fallback),
* an RFC 2544 throughput search with an event-driven loss probe,
* every builtin fault plan, with fingerprints, via ``run_plan``,
* two independent port->sink pipelines (the cross-chain bound
  extension: trains must stay long despite a foreign chain's events),
* the scalar (no-numpy) plan path, via a monkeypatched ``_vec._np``.

The Hypothesis section generalizes the fixed scenarios: randomized frame
sizes, rates, send batches, tier horizons, per-hop cable latencies,
descriptor ring sizes (including batches larger than the whole ring),
and fault plans must never diverge, and a fault window overlapping the
traffic must both force fallbacks and still match.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List

import pytest
from hypothesis import given, settings, strategies as st

from repro import MoonGenEnv, PoissonPattern, UniformBurstPattern
from repro._optional import np as _installed_np
from repro.batch import FALLBACK_REASONS, BatchTier, _vec
from repro.nicsim.link import Cable, Medium
from repro.core.latency import LoadLatencyExperiment
from repro.core.ratecontrol import GapFiller
from repro.dut import OvsForwarder
from repro.faults import BurstLoss, FaultPlan, QueueStall
from repro.faults.plan import builtin_plans
from repro.faults.runner import run_plan
from tests._hypothesis_profiles import property_settings
from tests.test_faults_properties import _PLAN

SETTINGS = property_settings(10)


# ---------------------------------------------------------------------------
# the reusable harness


def _dict_diff(plain: Any, batched: Any, path: str = "") -> List[str]:
    """Recursive diff of two observation trees; returns mismatch lines."""
    if isinstance(plain, dict) and isinstance(batched, dict):
        lines: List[str] = []
        for key in sorted(set(plain) | set(batched)):
            where = f"{path}.{key}" if path else str(key)
            if key not in plain:
                lines.append(f"{where}: only in batch run ({batched[key]!r})")
            elif key not in batched:
                lines.append(f"{where}: only in event run ({plain[key]!r})")
            else:
                lines.extend(_dict_diff(plain[key], batched[key], where))
        return lines
    if plain != batched:
        return [f"{path}: event={plain!r} batch={batched!r}"]
    return []


def assert_batch_equivalent(scenario, expect_batched: bool = True,
                            expect_fallback: str = None) -> Dict[str, Any]:
    """Run ``scenario(batch)`` both ways and require identical observations.

    ``scenario`` is a callable taking one bool; it returns
    ``(observations, env)`` where ``observations`` is a (nested) dict of
    everything the run produced and ``env`` is the :class:`MoonGenEnv`
    that ran it (for tier bookkeeping).  With ``expect_batched`` the tier
    must actually have executed trains; ``expect_fallback`` additionally
    requires a specific documented fallback reason to have fired (the way
    DuT topologies prove they declined to batch rather than never being
    asked).  Returns the batch run's tier stats for further assertions.
    """
    plain_obs, plain_env = scenario(False)
    batch_obs, batch_env = scenario(True)
    assert plain_env.batch is None, "event-mode run had a batch tier"
    assert batch_env.batch is not None, "batch-mode run had no tier"

    diff = _dict_diff(plain_obs, batch_obs)
    assert not diff, (
        "batch tier diverged from event-by-event execution:\n  "
        + "\n  ".join(diff))

    stats = batch_env.batch.stats()
    assert set(stats["fallbacks"]) <= set(FALLBACK_REASONS), \
        f"undocumented fallback reasons: {stats['fallbacks']}"
    if expect_batched:
        assert stats["trains"] > 0, "batch tier never executed a train"
        assert stats["frames"] > 0, stats
        assert stats["events_saved"] > 0, stats
    if expect_fallback is not None:
        assert stats["fallbacks"].get(expect_fallback, 0) > 0, (
            f"expected {expect_fallback!r} fallbacks, got "
            f"{stats['fallbacks']}")
    return stats


def _device_counters(dev) -> Dict[str, Any]:
    return {
        "tx_packets": dev.tx_packets,
        "tx_bytes": dev.tx_bytes,
        "rx_packets": dev.rx_packets,
        "rx_bytes": dev.rx_bytes,
        "rx_missed": dev.rx_missed,
        "rx_crc_errors": dev.rx_crc_errors,
        "tx_queues": [
            (q.tx_packets, q.tx_bytes, q.next_allowed_ps)
            for q in dev.port.tx_queues
        ],
    }


# ---------------------------------------------------------------------------
# fixed scenarios, one per kernel / fallback family


def _quickstart_scenario(batch: bool):
    """The CLI quickstart topology: saturating CBR, FIFO kernel."""
    from repro.cli import _build_quickstart

    env, tx, rx = _build_quickstart(seed=5, metrics=True, batch=batch)
    snap = env.start_snapshotter(250_000.0)
    env.wait_for_slaves(duration_ns=1_500_000)
    obs = {
        "tx": _device_counters(tx),
        "rx": _device_counters(rx),
        "now_ps": env.loop.now_ps,
        "metrics_fingerprint": snap.series.fingerprint(
            exclude_prefixes=("loop.", "batch.")),
    }
    return obs, env


def _paced_scenario(batch: bool):
    """Hardware CBR on the NIC: the paced ring kernel."""
    env = MoonGenEnv(seed=9, batch=batch)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)
    queue = tx.get_tx_queue(0)
    queue.set_rate_pps(2e6, 64)

    def slave(env, queue):
        mem = env.create_mempool(
            fill=lambda b: b.udp_packet.fill(pkt_length=60))
        bufs = mem.buf_array(32)
        while env.running():
            bufs.alloc(60)
            yield queue.send(bufs)

    env.launch(slave, env, queue)
    env.wait_for_slaves(duration_ns=1_500_000)
    obs = {
        "tx": _device_counters(tx),
        "rx": _device_counters(rx),
        "now_ps": env.loop.now_ps,
    }
    return obs, env


def _pattern_scenario(make_pattern, seed: int):
    """CRC-gap software rate control driving an arbitrary pattern."""
    def scenario(batch: bool):
        env = MoonGenEnv(seed=seed, batch=batch)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        filler = GapFiller()

        def craft(buf, index):
            buf.eth_packet.fill(eth_type=0x0800)

        env.launch(filler.load_task, env, tx.get_tx_queue(0),
                   make_pattern(), 400, craft)
        env.wait_for_slaves(duration_ns=2_000_000)
        obs = {
            "tx": _device_counters(tx),
            "rx": _device_counters(rx),
            "now_ps": env.loop.now_ps,
        }
        return obs, env

    return scenario


def _load_latency_scenario(batch: bool):
    """The load-latency shape: traffic through the OvS DuT."""
    env = MoonGenEnv(seed=2, cost_noise=False, batch=batch)
    tx = env.config_device(0, tx_queues=2)
    rx = env.config_device(1, rx_queues=1)
    dut = OvsForwarder(env.loop)
    env.connect_to_sink(tx, dut.ingress)
    dut.connect_output(env.wire_to_device(rx))
    env.register_dut(dut)
    experiment = LoadLatencyExperiment(
        env, tx, rx, mode="hardware",
        n_probes=30, probe_interval_ns=50_000.0)
    result = experiment.run(1.0e6, duration_ns=1_500_000.0)
    obs = {
        "tx": _device_counters(tx),
        "rx": _device_counters(rx),
        "dut": dut.counters(),
        "now_ps": env.loop.now_ps,
        "result": {
            "tx_packets": result.tx_packets,
            "rx_packets": result.rx_packets,
            "lost_probes": result.lost_probes,
            "probe_confidence": result.probe_confidence,
            "latency_samples": tuple(result.latency.samples),
        },
    }
    return obs, env


def _cross_wire_scenario(batch: bool):
    """Two independent port->sink pipelines (the Figure 2 shape).

    Each pipeline's per-frame events (``_mac_done``, wire delivery) sit in
    the shared heap; without the cross-chain bound extension every train
    on one pipeline would be strangled to a frame or two by the *other*
    pipeline's next event.  The scenario therefore both proves
    equivalence under chain-skip and (via the train-length assertion in
    the test) that the extension actually engaged.
    """
    env = MoonGenEnv(seed=11, batch=batch)
    pairs = []
    for base in (0, 2):
        tx = env.config_device(base, tx_queues=1)
        rx = env.config_device(base + 1, rx_queues=1)
        env.connect(tx, rx)
        pairs.append((tx, rx))

    def slave(env, queue):
        mem = env.create_mempool(
            fill=lambda b: b.udp_packet.fill(pkt_length=60))
        bufs = mem.buf_array(32)
        while env.running():
            bufs.alloc(60)
            yield queue.send(bufs)

    for tx, _ in pairs:
        env.launch(slave, env, tx.get_tx_queue(0))
    env.wait_for_slaves(duration_ns=1_500_000)
    obs: Dict[str, Any] = {"now_ps": env.loop.now_ps}
    for i, (tx, rx) in enumerate(pairs):
        obs[f"tx{i}"] = _device_counters(tx)
        obs[f"rx{i}"] = _device_counters(rx)
    return obs, env


class TestCrossWireEquivalence:
    def test_two_pipelines_identical_and_chain_skipped(self):
        """Two disjoint saturating pipelines stay bit-identical, and the
        cross-chain extension keeps trains long: frames per train must
        stay well above the 1-2 frames a strangled bound would allow."""
        stats = assert_batch_equivalent(_cross_wire_scenario)
        assert stats["frames"] / stats["trains"] > 4, stats

    def test_mixed_paced_and_unpaced_pipelines(self):
        """One hardware-paced pipeline next to a saturating one: both
        kernels run in the same heap and neither diverges."""
        def scenario(batch: bool):
            env = MoonGenEnv(seed=12, batch=batch)
            tx0 = env.config_device(0, tx_queues=1)
            rx0 = env.config_device(1, rx_queues=1)
            tx1 = env.config_device(2, tx_queues=1)
            rx1 = env.config_device(3, rx_queues=1)
            env.connect(tx0, rx0)
            env.connect(tx1, rx1)
            tx1.get_tx_queue(0).set_rate_pps(2e6, 64)

            def slave(env, queue):
                mem = env.create_mempool(
                    fill=lambda b: b.udp_packet.fill(pkt_length=60))
                bufs = mem.buf_array(32)
                while env.running():
                    bufs.alloc(60)
                    yield queue.send(bufs)

            env.launch(slave, env, tx0.get_tx_queue(0))
            env.launch(slave, env, tx1.get_tx_queue(0))
            env.wait_for_slaves(duration_ns=1_500_000)
            obs = {
                "tx0": _device_counters(tx0), "rx0": _device_counters(rx0),
                "tx1": _device_counters(tx1), "rx1": _device_counters(rx1),
                "now_ps": env.loop.now_ps,
            }
            return obs, env

        assert_batch_equivalent(scenario)


# ---------------------------------------------------------------------------
# in-dataplane latency histograms: the observation layer itself must be
# batch-, jobs-, and scheduler-invariant (docs/METRICS.md)


def _dataplane_obs(env) -> Dict[str, Any]:
    """Deep-diffable view of every dataplane histogram + fingerprint."""
    return {
        "dataplane": env.dataplane.read_all(),
        "latency_fingerprint": env.dataplane.fingerprint(),
    }


def _dataplane_quickstart(batch: bool, scheduler=None):
    """Quickstart with per-hop observation armed: the FIFO kernel must
    accumulate tx-queue/wire/e2e/inter-arrival values bit-identically."""
    from repro.cli import _build_quickstart

    env, tx, rx = _build_quickstart(seed=5, metrics=True, batch=batch,
                                    scheduler=scheduler, dataplane=True)
    snap = env.start_snapshotter(250_000.0)
    env.wait_for_slaves(duration_ns=1_500_000)
    obs = {
        "tx": _device_counters(tx),
        "rx": _device_counters(rx),
        "now_ps": env.loop.now_ps,
        "metrics_fingerprint": snap.series.fingerprint(
            exclude_prefixes=("loop.", "batch.")),
    }
    obs.update(_dataplane_obs(env))
    return obs, env


def _dataplane_paced(batch: bool):
    """Hardware CBR with observation armed: the paced ring kernel."""
    env = MoonGenEnv(seed=9, metrics=True, dataplane=True, batch=batch)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)
    queue = tx.get_tx_queue(0)
    queue.set_rate_pps(2e6, 64)

    def slave(env, queue):
        mem = env.create_mempool(
            fill=lambda b: b.udp_packet.fill(pkt_length=60))
        bufs = mem.buf_array(32)
        while env.running():
            bufs.alloc(60)
            yield queue.send(bufs)

    env.launch(slave, env, queue)
    env.wait_for_slaves(duration_ns=1_500_000)
    obs = {
        "tx": _device_counters(tx),
        "rx": _device_counters(rx),
        "now_ps": env.loop.now_ps,
    }
    obs.update(_dataplane_obs(env))
    return obs, env


def _dataplane_pattern(make_pattern, seed: int):
    """CRC-gap software rate control with observation armed: fillers are
    FCS-gated out of the histograms, valid frames are not."""
    def scenario(batch: bool):
        env = MoonGenEnv(seed=seed, metrics=True, dataplane=True,
                         batch=batch)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        filler = GapFiller()

        def craft(buf, index):
            buf.eth_packet.fill(eth_type=0x0800)

        env.launch(filler.load_task, env, tx.get_tx_queue(0),
                   make_pattern(), 400, craft)
        env.wait_for_slaves(duration_ns=2_000_000)
        obs = {
            "tx": _device_counters(tx),
            "rx": _device_counters(rx),
            "now_ps": env.loop.now_ps,
        }
        obs.update(_dataplane_obs(env))
        return obs, env

    return scenario


def _dataplane_load_latency(batch: bool):
    """Load-latency through the OvS DuT with observation armed: the DuT
    ring histogram joins the per-hop set; the tier must still decline."""
    env = MoonGenEnv(seed=2, cost_noise=False, metrics=True,
                     dataplane=True, batch=batch)
    tx = env.config_device(0, tx_queues=2)
    rx = env.config_device(1, rx_queues=1)
    dut = OvsForwarder(env.loop)
    env.connect_to_sink(tx, dut.ingress)
    dut.connect_output(env.wire_to_device(rx))
    env.register_dut(dut)
    experiment = LoadLatencyExperiment(
        env, tx, rx, mode="hardware",
        n_probes=30, probe_interval_ns=50_000.0)
    result = experiment.run(1.0e6, duration_ns=1_500_000.0)
    obs = {
        "tx": _device_counters(tx),
        "rx": _device_counters(rx),
        "dut": dut.counters(),
        "now_ps": env.loop.now_ps,
        "latency_samples": tuple(result.latency.samples),
    }
    obs.update(_dataplane_obs(env))
    return obs, env


class TestDataplaneEquivalence:
    """The in-dataplane observability guarantee: per-hop latency and
    inter-arrival histograms are bit-identical event vs batch, serial
    vs ``--jobs 2``, and heap vs calendar scheduler."""

    def test_quickstart_histograms_identical(self):
        stats = assert_batch_equivalent(_dataplane_quickstart)
        assert stats["trains"] > 0

    def test_hardware_cbr_histograms_identical(self):
        assert_batch_equivalent(_dataplane_paced)

    @pytest.mark.skipif(_installed_np is None,
                        reason="traffic patterns draw gaps with numpy")
    def test_poisson_crc_histograms_identical(self):
        assert_batch_equivalent(
            _dataplane_pattern(lambda: PoissonPattern(2e6, seed=4), seed=4),
            expect_fallback="horizon")

    def test_load_latency_dut_histograms_identical(self):
        obs_stats = assert_batch_equivalent(_dataplane_load_latency,
                                            expect_batched=False,
                                            expect_fallback="sink-unbatchable")
        # The DuT ring histogram actually observed traffic.
        obs, env = _dataplane_load_latency(False)
        assert obs["dataplane"]["latency.hop.dut.ring"]["total"] > 0

    @pytest.mark.parametrize("name", sorted(builtin_plans())[:2])
    def test_fault_plan_histograms_identical(self, name):
        plan = builtin_plans(seed=0)[name]
        kwargs = dict(duration_ns=1_500_000.0, rate_pps=2e6, metrics=True,
                      dataplane=True)
        plain = run_plan(plan, **kwargs)
        batched = run_plan(plan, batch=True, **kwargs)
        diff = _dict_diff(plain, batched)
        assert not diff, (
            f"plan {name!r} diverged under batch with dataplane "
            "observation armed:\n  " + "\n  ".join(diff))
        assert plain["latency_fingerprint"]

    def test_heap_vs_calendar_histograms_identical(self):
        combos = [
            _dataplane_quickstart(False, scheduler="heap"),
            _dataplane_quickstart(False, scheduler="calendar"),
            _dataplane_quickstart(True, scheduler="calendar"),
        ]
        base = combos[0][0]
        for obs, _ in combos[1:]:
            diff = _dict_diff(base, obs)
            assert not diff, "\n  ".join(diff)

    def test_serial_vs_jobs_histograms_identical(self):
        """The precision audit fans whole simulations across worker
        processes; the per-method histograms must not care."""
        from repro.analysis.precision import run_precision_audit

        kwargs = dict(rate_mpps=1.0, duration_ns=400_000, seed=1)
        serial = run_precision_audit(**kwargs)
        sharded = run_precision_audit(jobs=2, **kwargs)
        diff = _dict_diff(
            {r["method"]: r for r in serial},
            {r["method"]: r for r in sharded})
        assert not diff, "\n  ".join(diff)


# ---------------------------------------------------------------------------
# golden pin: one canonical batch-mode run, committed


GOLDEN_BATCH = pathlib.Path(__file__).parent / "golden" \
    / "batch_quickstart.json"


def _golden_batch_observations() -> Dict[str, Any]:
    """The canonical batch-mode run behind ``golden/batch_quickstart.json``."""
    obs, env = _quickstart_scenario(batch=True)
    obs["tier"] = env.batch.stats()
    return obs


class TestGoldenBatchRun:
    def test_batch_run_matches_committed_golden(self):
        """The canonical batch-mode quickstart reproduces the committed
        counters, metrics fingerprint, and tier stats bit for bit — so a
        batch-tier regression shows up as a reviewable JSON diff, not a
        silent drift.  Regenerate (and review like a code diff) with::

            PYTHONPATH=src:. python tests/test_batch_equivalence.py \\
                --write-golden
        """
        golden = json.loads(GOLDEN_BATCH.read_text())
        current = json.loads(json.dumps(_golden_batch_observations()))
        diff = _dict_diff(golden, current)
        assert not diff, (
            "batch-mode run drifted from the committed golden "
            "(tests/golden/batch_quickstart.json); if intentional, "
            "regenerate with --write-golden and review:\n  "
            + "\n  ".join(diff))


class TestFixedScenarios:
    def test_quickstart(self):
        assert_batch_equivalent(_quickstart_scenario)

    def test_hardware_cbr_paced(self):
        assert_batch_equivalent(_paced_scenario)

    @pytest.mark.skipif(_installed_np is None,
                        reason="traffic patterns draw gaps with numpy")
    def test_poisson_pattern(self):
        """CRC-gap software rate control paces itself with per-gap sleep
        events, so during the active span every detected train is bounded
        by the producer's next wakeup and nothing fits (``horizon``
        fallbacks); the end-of-run drain still executes as a real train —
        and the run must be identical throughout."""
        stats = assert_batch_equivalent(
            _pattern_scenario(lambda: PoissonPattern(2e6, seed=4), seed=4),
            expect_fallback="horizon")
        assert "unbounded" not in stats["fallbacks"], stats

    @pytest.mark.skipif(_installed_np is None,
                        reason="traffic patterns draw gaps with numpy")
    def test_uniform_burst_pattern(self):
        stats = assert_batch_equivalent(
            _pattern_scenario(
                lambda: UniformBurstPattern(1e6, burst_size=16), seed=8),
            expect_fallback="horizon")
        assert "unbounded" not in stats["fallbacks"], stats

    def test_load_latency_through_dut(self):
        """The DuT sink is deliberately unbatchable: the tier must refuse
        (with the documented reason) and the run must still be identical."""
        assert_batch_equivalent(_load_latency_scenario,
                                expect_batched=False,
                                expect_fallback="sink-unbatchable")

    def test_traced_runs_stay_identical(self):
        """An enabled tracer forces per-frame fidelity; golden traces
        must be byte-identical whether the tier was requested or not."""
        from repro.trace import Tracer

        def run(batch: bool):
            tracer = Tracer()
            env = MoonGenEnv(seed=13, batch=batch, trace=tracer)
            tx = env.config_device(0, tx_queues=1)
            rx = env.config_device(1, rx_queues=1)
            env.connect(tx, rx)

            def slave(env, queue):
                mem = env.create_mempool(
                    fill=lambda b: b.udp_packet.fill(pkt_length=60))
                bufs = mem.buf_array(16)
                while env.running():
                    bufs.alloc(60)
                    yield queue.send(bufs)

            env.launch(slave, env, tx.get_tx_queue(0))
            env.wait_for_slaves(duration_ns=300_000)
            return tracer.to_jsonl(), env

        trace_plain, _ = run(False)
        trace_batch, env = run(True)
        assert trace_plain == trace_batch
        assert env.batch.stats()["fallbacks"].get("tracer", 0) > 0


class TestRfc2544Equivalence:
    def test_throughput_search_identical(self):
        """An RFC 2544 binary search with an *event-driven* loss probe
        lands on the same rate, through the same trials, either way."""
        from repro.analysis.rfc2544 import throughput_test

        last_env = {}

        def make_probe(batch: bool):
            def probe(pps: float) -> float:
                env = MoonGenEnv(seed=6, cost_noise=False, batch=batch)
                tx = env.config_device(0, tx_queues=1)
                rx = env.config_device(1, rx_queues=1)
                dut = OvsForwarder(env.loop)
                env.connect_to_sink(tx, dut.ingress)
                dut.connect_output(env.wire_to_device(rx))
                env.register_dut(dut)
                queue = tx.get_tx_queue(0)
                queue.set_rate_pps(pps, 64)

                def slave(env, queue):
                    mem = env.create_mempool(
                        fill=lambda b: b.udp_packet.fill(pkt_length=60))
                    bufs = mem.buf_array(32)
                    while env.running():
                        bufs.alloc(60)
                        yield queue.send(bufs)

                env.launch(slave, env, queue)
                env.wait_for_slaves(duration_ns=400_000)
                last_env[batch] = env
                sent = tx.tx_packets
                return 0.0 if not sent else (sent - rx.rx_packets) / sent

            return probe

        def scenario(batch: bool):
            result = throughput_test(
                make_probe(batch), line_rate_pps=4e6, frame_size=64,
                resolution=0.1, min_rate_pps=5e5)
            obs = {
                "throughput_pps": result.throughput_pps,
                "trials": [(t.offered_pps, t.loss_fraction)
                           for t in result.trials],
            }
            return obs, last_env[batch]

        assert_batch_equivalent(scenario, expect_batched=False,
                                expect_fallback="sink-unbatchable")


class TestFaultPlanEquivalence:
    @pytest.mark.parametrize("name", sorted(builtin_plans()))
    def test_builtin_plans_identical(self, name):
        """Every builtin fault plan: full result dict *and* metrics
        fingerprint must match bit for bit under the batch tier."""
        plan = builtin_plans(seed=0)[name]
        kwargs = dict(duration_ns=1_500_000.0, rate_pps=2e6, metrics=True)
        plain = run_plan(plan, **kwargs)
        batched = run_plan(plan, batch=True, **kwargs)
        diff = _dict_diff(plain, batched)
        assert not diff, (
            f"plan {name!r} diverged under batch:\n  " + "\n  ".join(diff))


# ---------------------------------------------------------------------------
# property tests: randomized scenarios never diverge


def _run_tx(batch_tier, send_batch: int, frame_size: int,
            duration_ns: int, rate_pps: float = None):
    env = MoonGenEnv(seed=17, batch=batch_tier)
    tx = env.config_device(0, tx_queues=1)
    rx = env.config_device(1, rx_queues=1)
    env.connect(tx, rx)
    queue = tx.get_tx_queue(0)
    if rate_pps:
        queue.set_rate_pps(rate_pps, frame_size + 4)

    def slave(env, queue):
        mem = env.create_mempool(
            fill=lambda b: b.udp_packet.fill(pkt_length=frame_size))
        bufs = mem.buf_array(send_batch)
        while env.running():
            bufs.alloc(frame_size)
            yield queue.send(bufs)

    env.launch(slave, env, queue)
    env.wait_for_slaves(duration_ns=duration_ns)
    obs = {
        "tx": _device_counters(tx),
        "rx": _device_counters(rx),
        "now_ps": env.loop.now_ps,
    }
    return obs, env


class TestRandomizedEquivalence:
    @settings(**SETTINGS)
    @given(send_batch=st.integers(min_value=1, max_value=64),
           frame_size=st.sampled_from([60, 124, 508, 1514]),
           duration_ns=st.integers(min_value=50_000, max_value=400_000),
           horizon_us=st.sampled_from([None, 10, 100, 1000]),
           rate_mpps=st.sampled_from([None, 0.5, 2.0]))
    def test_tx_runs_never_diverge(self, send_batch, frame_size,
                                   duration_ns, horizon_us, rate_mpps):
        """Arbitrary frame sizes, send batches, tier horizons, and rate
        control never produce a divergent run."""
        rate = rate_mpps * 1e6 if rate_mpps else None

        def scenario(batch: bool):
            tier = None
            if batch:
                tier = (BatchTier() if horizon_us is None
                        else BatchTier(horizon_ns=horizon_us * 1000.0))
            return _run_tx(tier, send_batch, frame_size, duration_ns,
                           rate_pps=rate)

        assert_batch_equivalent(scenario, expect_batched=False)

    @settings(**SETTINGS)
    @given(start_us=st.integers(min_value=10, max_value=800),
           length_us=st.integers(min_value=20, max_value=600),
           stall=st.booleans(),
           seed=st.integers(min_value=0, max_value=7))
    def test_fault_mid_traffic_forces_fallback_and_matches(
            self, start_us, length_us, stall, seed):
        """A fault window overlapping steady traffic: the detector must
        decline to batch across it (fallbacks recorded) and the run must
        still match event-by-event execution bit for bit."""
        if stall:
            fault = QueueStall(target="port:0", queue=0,
                               start_ns=start_us * 1000.0,
                               end_ns=(start_us + length_us) * 1000.0)
        else:
            fault = BurstLoss(target="wire:0->1",
                              start_ns=start_us * 1000.0,
                              end_ns=(start_us + length_us) * 1000.0,
                              p_good_bad=0.4, p_bad_good=0.2,
                              loss_good=0.05, loss_bad=0.8)
        plan = FaultPlan(faults=(fault,), seed=seed)
        kwargs = dict(duration_ns=1_200_000.0, rate_pps=2e6)
        plain = run_plan(plan, **kwargs)
        batched = run_plan(plan, batch=True, **kwargs)
        diff = _dict_diff(plain, batched)
        assert not diff, "\n  ".join(diff)

    @settings(**SETTINGS)
    @given(lat_ns=st.sampled_from([0.0, 49.3, 310.7, 2147.2]),
           ring=st.sampled_from([4, 8, 16, 33, 64]),
           send_batch=st.integers(min_value=1, max_value=96),
           paced=st.booleans())
    def test_latency_ring_and_overflow_batches_never_diverge(
            self, lat_ns, ring, send_batch, paced):
        """Per-hop cable latency, tiny-to-default descriptor rings, send
        batches larger than the whole ring (the sawtooth refill shape),
        paced and unpaced: no combination may diverge."""
        cable = Cable(Medium("prop", 1.0, lat_ns), 0.0)

        def scenario(batch: bool):
            env = MoonGenEnv(seed=21, batch=batch)
            tx = env.config_device(0, tx_queues=1)
            rx = env.config_device(1, rx_queues=1)
            queue = tx.get_tx_queue(0)
            # Resize the descriptor ring exactly as the constructor would
            # have (the wake threshold derives from the ring size).
            queue.ring_size = ring
            queue.space_wake_threshold = min(32, max(1, ring // 4))
            env.connect(tx, rx, cable=cable)
            if paced:
                queue.set_rate_pps(1.5e6, 64)

            def slave(env, queue):
                mem = env.create_mempool(
                    fill=lambda b: b.udp_packet.fill(pkt_length=60))
                bufs = mem.buf_array(send_batch)
                while env.running():
                    bufs.alloc(60)
                    yield queue.send(bufs)

            env.launch(slave, env, queue)
            env.wait_for_slaves(duration_ns=300_000)
            obs = {
                "tx": _device_counters(tx),
                "rx": _device_counters(rx),
                "now_ps": env.loop.now_ps,
            }
            return obs, env

        assert_batch_equivalent(scenario, expect_batched=False)

    @settings(**property_settings(8))
    @given(st.data())
    def test_random_fault_plans_never_diverge(self, data):
        """Random multi-fault plans (the chaos-test strategy) are
        batch-invariant wholesale."""
        plan = data.draw(_PLAN)
        plain = run_plan(plan, duration_ns=1_000_000.0, rate_pps=1e6)
        batched = run_plan(plan, duration_ns=1_000_000.0, rate_pps=1e6,
                           batch=True)
        diff = _dict_diff(plain, batched)
        assert not diff, "\n  ".join(diff)


class TestPurePythonMode:
    """The numpy-free leg, without uninstalling numpy.

    ``repro.batch._vec`` binds ``_np`` once at import; setting it to
    ``None`` is exactly the state the no-numpy CI job (and a machine
    without numpy) runs in — every kernel must fall back to the scalar
    plan path with bit-identical results.
    """

    def test_equivalence_holds_without_numpy(self, monkeypatch):
        monkeypatch.setattr(_vec, "_np", None)
        assert not _vec.has_numpy()
        stats = assert_batch_equivalent(_quickstart_scenario)
        assert stats["trains"] > 0

    def test_golden_run_matches_without_numpy(self, monkeypatch):
        """The committed golden batch run must not depend on which plan
        path computed it."""
        monkeypatch.setattr(_vec, "_np", None)
        golden = json.loads(GOLDEN_BATCH.read_text())
        current = json.loads(json.dumps(_golden_batch_observations()))
        diff = _dict_diff(golden, current)
        assert not diff, (
            "pure-python batch run drifted from the committed golden:\n  "
            + "\n  ".join(diff))

    @pytest.mark.skipif(not _vec.has_numpy(), reason="numpy unavailable")
    @settings(**SETTINGS)
    @given(macs=st.lists(st.integers(min_value=1, max_value=100_000),
                         max_size=300),
           headroom=st.integers(min_value=0, max_value=2_000_000))
    def test_plan_limit_modes_agree(self, macs, headroom):
        """``plan_limit`` gives the same answer through cumsum+bisect and
        the scalar scan for arbitrary inputs."""
        vectorized = _vec.plan_limit(macs, headroom)
        saved = _vec._np
        _vec._np = None
        try:
            scalar = _vec.plan_limit(macs, headroom)
        finally:
            _vec._np = saved
        assert vectorized == scalar


if __name__ == "__main__":
    import sys

    if "--write-golden" in sys.argv:
        GOLDEN_BATCH.write_text(
            json.dumps(_golden_batch_observations(), indent=1,
                       sort_keys=True) + "\n")
        print(f"wrote {GOLDEN_BATCH}")
    else:
        print(__doc__)
