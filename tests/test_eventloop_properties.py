"""Property-based tests (hypothesis) for the event loop and processes.

These pin the scheduler invariants every simulation result rests on:

* events scheduled for the same instant fire in insertion order,
* a cancelled event never fires,
* ``run(until_ps)`` never executes an event beyond the horizon,
* arbitrary interleavings of ``spawn``/``Signal.trigger`` are
  deterministic: two identical runs produce byte-identical traces,
* killing a parked process drops its waiter registration (no leaks).
"""

from hypothesis import given, settings, strategies as st

from repro.nicsim.eventloop import EventLoop, Signal, wait_any
from tests._hypothesis_profiles import property_settings
from repro.trace import Tracer

SETTINGS = property_settings()


class TestSchedulerProperties:
    @settings(**SETTINGS)
    @given(st.lists(st.integers(min_value=0, max_value=5),
                    min_size=1, max_size=40))
    def test_same_instant_events_fire_in_insertion_order(self, delays):
        """Equal-time events keep insertion order; overall order is a
        stable sort by scheduled time."""
        loop = EventLoop()
        fired = []
        for i, delay in enumerate(delays):
            loop.schedule(delay, lambda i=i: fired.append(i))
        loop.run()
        expected = [i for _, i in sorted(
            (delay, i) for i, delay in enumerate(delays))]
        assert fired == expected

    @settings(**SETTINGS)
    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=1, max_size=30),
           st.sets(st.integers(min_value=0, max_value=29)))
    def test_cancelled_events_never_fire(self, delays, cancel_idx):
        loop = EventLoop()
        fired = []
        events = [loop.schedule(d, lambda i=i: fired.append(i))
                  for i, d in enumerate(delays)]
        for i in cancel_idx:
            if i < len(events):
                events[i].cancel()
        loop.run()
        cancelled = {i for i in cancel_idx if i < len(delays)}
        assert set(fired) == set(range(len(delays))) - cancelled

    @settings(**SETTINGS)
    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=30),
           st.integers(min_value=0, max_value=1000))
    def test_run_until_never_overshoots(self, delays, until):
        loop = EventLoop()
        fired = []
        for d in delays:
            loop.schedule(d, lambda d=d: fired.append(d))
        loop.run(until_ps=until)
        assert all(t <= until for t in fired)
        assert loop.now_ps == until  # clock lands exactly on the horizon
        # The rest still fires afterwards — nothing was lost, only deferred.
        loop.run()
        assert sorted(fired) == sorted(delays)

    @settings(**SETTINGS)
    @given(st.lists(st.integers(min_value=1, max_value=500),
                    min_size=1, max_size=10))
    def test_process_sleep_sums(self, sleeps):
        """A process yielding delays finishes at exactly their sum."""
        loop = EventLoop()
        finished_at = []

        def proc():
            for s in sleeps:
                yield s
            finished_at.append(loop.now_ps)

        loop.spawn(proc())
        loop.run()
        assert finished_at == [sum(sleeps)]


# One interleaving "program": processes wait on signals or sleep, external
# events trigger signals at arbitrary times.
program = st.builds(
    dict,
    n_signals=st.integers(min_value=1, max_value=4),
    procs=st.lists(  # per process: list of (kind, arg) steps
        st.lists(st.tuples(st.sampled_from(["sleep", "wait", "yield"]),
                           st.integers(min_value=0, max_value=200)),
                 min_size=1, max_size=5),
        min_size=1, max_size=4),
    triggers=st.lists(  # (delay_ps, signal_idx, value)
        st.tuples(st.integers(min_value=0, max_value=400),
                  st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=9)),
        min_size=1, max_size=8),
)


def run_program(spec):
    """Execute one randomized spawn/trigger interleaving under tracing."""
    loop = EventLoop()
    tracer = Tracer().bind(loop)
    signals = [Signal() for _ in range(spec["n_signals"])]
    log = []

    def make_proc(pid, steps):
        def proc():
            for kind, arg in steps:
                if kind == "sleep":
                    yield arg
                elif kind == "wait":
                    value = yield wait_any(
                        loop, [signals[arg % len(signals)]], timeout_ps=300)
                    log.append((pid, loop.now_ps, value))
                else:
                    yield None
            log.append((pid, loop.now_ps, "done"))
        return proc

    for pid, steps in enumerate(spec["procs"]):
        loop.spawn(make_proc(pid, steps)(), name=f"p{pid}")
    for delay, idx, value in spec["triggers"]:
        loop.schedule(delay, lambda i=idx, v=value:
                      signals[i % len(signals)].trigger(v))
    loop.run()
    return log, tracer.to_jsonl()


class TestInterleavingDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(program)
    def test_identical_runs_produce_identical_traces(self, spec):
        log_a, trace_a = run_program(spec)
        log_b, trace_b = run_program(spec)
        assert log_a == log_b
        assert trace_a == trace_b

    @settings(max_examples=30, deadline=None)
    @given(program)
    def test_all_processes_terminate(self, spec):
        """wait_any timeouts guarantee no program parks forever."""
        log, _ = run_program(spec)
        done = [entry for entry in log if entry[2] == "done"]
        assert len(done) == len(spec["procs"])


class TestWaiterHygieneProperties:
    @settings(**SETTINGS)
    @given(st.integers(min_value=1, max_value=8))
    def test_killed_parked_processes_leave_no_waiters(self, n_procs):
        loop = EventLoop()
        sig = Signal()

        def proc():
            yield sig

        procs = [loop.spawn(proc()) for _ in range(n_procs)]
        loop.run()
        assert len(sig._waiters) == n_procs
        for p in procs:
            p.kill()
        assert not sig.has_waiters

    @settings(**SETTINGS)
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=4))
    def test_wait_any_deregisters_losers(self, n_signals, winner):
        """After any source wins, no source signal retains the combiner."""
        loop = EventLoop()
        signals = [Signal() for _ in range(n_signals)]
        got = []
        combined = wait_any(loop, signals, timeout_ps=1000)
        combined.wait(got.append)
        signals[winner % n_signals].trigger("win")
        assert got == ["win"]
        assert not any(s.has_waiters for s in signals)


# One scheduler-parity "program": arbitrary interleavings of schedule /
# cancel / run(until) / step, replayed on both backends.
parity_ops = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"),
                  st.integers(min_value=0, max_value=20_000)),
        st.tuples(st.just("cancel"),
                  st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("run_until"),
                  st.integers(min_value=0, max_value=30_000)),
        st.tuples(st.just("step"), st.just(0)),
    ),
    min_size=1, max_size=60)


def _drive_scheduler(scheduler, ops):
    """Replay one op sequence; returns every observable the loop exposes."""
    loop = EventLoop(scheduler=scheduler)
    fired = []
    handles = []
    observed = []
    for tag, (kind, arg) in enumerate(ops):
        if kind == "schedule":
            handles.append(
                loop.schedule(arg, lambda t=tag: fired.append((t, loop.now_ps))))
        elif kind == "cancel" and handles:
            handles[arg % len(handles)].cancel()
        elif kind == "run_until":
            loop.run(until_ps=loop.now_ps + arg)
        elif kind == "step":
            loop.step()
        observed.append(
            (loop.now_ps, loop.pending_events, loop.next_event_time_ps()))
    loop.run()
    return fired, observed, loop.now_ps, loop.pending_events, \
        loop.events_processed


class TestSchedulerParity:
    @settings(**SETTINGS)
    @given(parity_ops)
    def test_heap_and_calendar_bit_identical(self, ops):
        """The house invariant of the scheduler seam: arbitrary
        schedule/cancel/run(until)/step interleavings produce the same
        fire order, clocks, live counts, and next-event times on the
        binary heap and the calendar queue."""
        assert _drive_scheduler("heap", ops) == \
            _drive_scheduler("calendar", ops)

    @settings(**SETTINGS)
    @given(parity_ops)
    def test_calendar_drains_exactly(self, ops):
        """After a full drain the calendar's exact live count is zero and
        nothing lingers but lazily-cancelled entries (none, post-run)."""
        loop = EventLoop(scheduler="calendar")
        for tag, (kind, arg) in enumerate(ops):
            if kind == "schedule":
                loop.schedule(arg, lambda: None)
        loop.run()
        assert loop.pending_events == 0
        assert loop.scheduler.peek_time() is None
