"""Smoke tests: every example script runs end to end."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    out = io.StringIO()
    try:
        with redirect_stdout(out):
            spec.loader.exec_module(module)
            module.main()
    finally:
        sys.argv = old_argv
    return out.getvalue()


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart")
        assert "transmitted" in out
        assert "14.8" in out  # line rate reached

    def test_quality_of_service(self):
        out = run_example("quality_of_service_test", ["50", "400"])
        assert "RX total" in out
        assert "latency" in out

    def test_l2_load_latency(self):
        out = run_example("l2_load_latency", ["0.5"])
        assert "DuT forwarded" in out
        assert "median" in out

    def test_l2_poisson_load_latency(self):
        out = run_example("l2_poisson_load_latency", ["0.5"])
        assert "fillers dropped in hardware" in out

    def test_inter_arrival_times(self):
        out = run_example("inter_arrival_times", ["20000"])
        assert "MoonGen" in out and "zsend" in out
        assert "±64ns" in out

    def test_rate_control_precision(self):
        out = run_example("rate_control_precision", ["1.0", "0.5"])
        for method in ("hardware", "crc", "software-burst"):
            assert method in out
        assert "inter-arrival histogram" in out
        assert "micro-bursts" in out

    def test_multicore_scaling(self):
        out = run_example("multicore_scaling", ["3"])
        assert "line rate" in out
        lines = [l for l in out.splitlines() if l.strip() and l.strip()[0].isdigit()]
        assert len(lines) == 3

    def test_timestamps(self):
        out = run_example("timestamps")
        assert "82599" in out and "X540" in out
        assert "320.0" in out  # the 2 m fiber latency of Table 3

    def test_rfc2544(self):
        out = run_example("rfc2544_throughput", ["64"])
        assert "zero-loss" in out
        assert "Mpps" in out

    def test_chaos_rfc2544(self):
        out = run_example("chaos_rfc2544", ["64"])
        assert "tolerance" in out
        assert "degenerate" in out  # the strict criterion collapses
        assert "converged on the DuT" in out  # the budgeted one recovers

    def test_pcap_replay(self):
        out = run_example("pcap_replay", ["150"])
        assert "captured 150 packets" in out
        assert "worst timing error" in out

    def test_protocol_zoo(self):
        out = run_example("protocol_zoo")
        for kind in ("udp4", "tcp4", "icmp4", "udp6", "arp"):
            assert kind in out

    def test_internet_scan(self):
        out = run_example("internet_scan", ["600"])
        assert "open hosts found" in out
        # Scan result matches the ground truth printed alongside.
        line = next(l for l in out.splitlines() if "open hosts" in l)
        found = int(line.split(":")[1].split("(")[0])
        truth = int(line.split("ground truth")[1].strip(" )"))
        assert found == truth

    def test_drift(self):
        out = run_example("drift")
        assert "worst case" in out
        assert "35.00" in out  # the Section 6.3 worst-case drift

    def test_l2_bursts(self):
        out = run_example("l2_bursts", ["4", "0.5"])
        assert "back-to-back fraction" in out
        line = next(l for l in out.splitlines() if "back-to-back" in l)
        measured = float(line.split(":")[1].split("%")[0])
        assert measured == pytest.approx(75.0, abs=5.0)  # 3 of 4 in burst

    def test_generate_results(self, tmp_path):
        out = run_example("generate_results", [str(tmp_path)])
        assert "wrote 9 CSV files" in out
        table4 = (tmp_path / "table4_rate_control.csv").read_text()
        assert "MoonGen" in table4 and "zsend" in table4
        fig8 = (tmp_path / "fig8_moongen_500kpps.csv").read_text()
        assert fig8.startswith("interarrival_ns,probability_pct")
