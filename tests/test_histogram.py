"""Tests for the Histogram container."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.core.histogram import Histogram

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


class TestBasics:
    def test_update_and_len(self):
        h = Histogram()
        h.update(1.0)
        h.extend([2.0, 3.0])
        assert len(h) == 3

    def test_min_max_avg(self):
        h = Histogram([1.0, 2.0, 3.0, 4.0])
        assert h.min() == 1.0
        assert h.max() == 4.0
        assert h.avg() == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Histogram().avg()
        with pytest.raises(ValueError, match="empty"):
            Histogram().percentile(50)
        # min()/max() used to leak a bare IndexError from the sample
        # list; they must follow avg()'s contract.
        with pytest.raises(ValueError, match="empty"):
            Histogram().min()
        with pytest.raises(ValueError, match="empty"):
            Histogram().max()

    def test_stddev(self):
        h = Histogram([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert h.stddev() == pytest.approx(2.138, abs=0.01)

    def test_stddev_single_sample(self):
        assert Histogram([1.0]).stddev() == 0.0

    def test_merge(self):
        merged = Histogram([1.0, 2.0]).merge(Histogram([3.0]))
        assert len(merged) == 3
        assert merged.max() == 3.0

    def test_merge_leaves_originals(self):
        a, b = Histogram([1.0]), Histogram([2.0])
        a.merge(b)
        assert len(a) == 1 and len(b) == 1


class TestPercentiles:
    def test_median_odd(self):
        assert Histogram([1, 5, 3]).median() == 3

    def test_median_interpolates(self):
        assert Histogram([1, 2, 3, 4]).median() == 2.5

    def test_quartiles(self):
        h = Histogram(range(1, 101))
        q1, q2, q3 = h.quartiles()
        assert q1 == pytest.approx(25.75)
        assert q2 == pytest.approx(50.5)
        assert q3 == pytest.approx(75.25)

    def test_extremes(self):
        h = Histogram([5, 1, 9])
        assert h.percentile(0) == 1
        assert h.percentile(100) == 9

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram([1]).percentile(101)

    @given(st.lists(finite, min_size=1, max_size=200),
           st.floats(min_value=0, max_value=100))
    def test_percentile_within_bounds(self, samples, p):
        h = Histogram(samples)
        value = h.percentile(p)
        assert h.min() <= value <= h.max()

    @given(st.lists(finite, min_size=2, max_size=100))
    def test_percentiles_monotone(self, samples):
        h = Histogram(samples)
        assert h.percentile(25) <= h.percentile(50) <= h.percentile(75)


class TestDistribution:
    def test_fraction_within(self):
        h = Histogram([100, 150, 200, 260])
        # |100-200| > 64; the other three are within the tolerance.
        assert h.fraction_within(200, 64) == pytest.approx(0.75)

    def test_fraction_below(self):
        h = Histogram([1, 2, 3, 4])
        assert h.fraction_below(3) == 0.5

    def test_bins(self):
        h = Histogram([0, 10, 70, 130])
        bins = h.bins(64, start=0)
        assert bins == {0.0: 2, 64.0: 1, 128.0: 1}

    def test_bins_reject_bad_width(self):
        with pytest.raises(ValueError):
            Histogram([1]).bins(0)

    @given(st.lists(finite, min_size=1, max_size=200))
    def test_bins_conserve_samples(self, samples):
        h = Histogram(samples)
        assert sum(h.bins(64.0).values()) == len(samples)

    @given(st.lists(finite, min_size=1, max_size=100),
           st.floats(min_value=0.1, max_value=1e6))
    def test_fraction_within_bounds(self, samples, tol):
        h = Histogram(samples)
        assert 0.0 <= h.fraction_within(0.0, tol) <= 1.0


class TestOutput:
    def test_csv_raw(self):
        out = io.StringIO()
        Histogram([1.5, 2.5]).write_csv(out)
        assert out.getvalue() == "sample_ns\n1.5\n2.5\n"

    def test_csv_binned(self):
        out = io.StringIO()
        Histogram([0, 1, 65]).write_csv(out, bin_width=64)
        lines = out.getvalue().strip().splitlines()
        assert lines[0] == "bin_ns,count"
        assert len(lines) == 3

    def test_summary(self):
        text = Histogram([1, 2, 3]).summary()
        assert "n=3" in text and "med=2.0" in text

    def test_summary_empty(self):
        assert Histogram().summary() == "histogram: empty"
