"""Tests for the wire/cable model (Table 3 physics)."""

import random

import pytest

from repro import units
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import (
    COPPER_CAT5E,
    Cable,
    FIBER_OM3,
    IDEAL_CABLE,
    Medium,
    Wire,
)


class TestMedium:
    def test_fiber_constants(self):
        # Table 3: k = 310.7 ns, v_p = 0.72 c on the 82599 fiber path.
        assert FIBER_OM3.modulation_ns == pytest.approx(310.7)
        assert FIBER_OM3.velocity_factor == pytest.approx(0.72)

    def test_copper_constants(self):
        # Table 3: k = 2147.2 ns, v_p = 0.69 c on the X540 copper path.
        assert COPPER_CAT5E.modulation_ns == pytest.approx(2147.2)
        assert COPPER_CAT5E.velocity_factor == pytest.approx(0.69)

    def test_propagation_linear_in_length(self):
        p10 = FIBER_OM3.propagation_ns(10.0)
        p20 = FIBER_OM3.propagation_ns(20.0)
        assert p20 == pytest.approx(2 * p10)

    def test_table3_fiber_2m(self):
        cable = Cable(FIBER_OM3, 2.0)
        assert cable.latency_ns() == pytest.approx(320.0, abs=1.0)

    def test_table3_fiber_20m(self):
        cable = Cable(FIBER_OM3, 20.0)
        assert cable.latency_ns() == pytest.approx(403.2, abs=1.0)

    def test_table3_copper_lengths(self):
        assert Cable(COPPER_CAT5E, 2.0).latency_ns() == pytest.approx(2156.8, abs=1.0)
        assert Cable(COPPER_CAT5E, 10.0).latency_ns() == pytest.approx(2195.2, abs=1.0)
        assert Cable(COPPER_CAT5E, 50.0).latency_ns() == pytest.approx(2387.2, abs=3.0)

    def test_fiber_has_no_jitter(self):
        rng = random.Random(0)
        assert all(FIBER_OM3.jitter_ns(rng) == 0.0 for _ in range(100))

    def test_copper_jitter_distribution(self):
        # Section 6.1: >99.5 % within ±6.4 ns, total range 64 ns (±32 ns).
        rng = random.Random(1)
        samples = [COPPER_CAT5E.jitter_ns(rng) for _ in range(100_000)]
        within = sum(1 for s in samples if abs(s) <= 6.4) / len(samples)
        assert within > 0.995
        assert max(samples) <= 32.0 and min(samples) >= -32.0
        # Jitter is quantized to the 6.4 ns symbol grid.
        assert all(abs(s / 6.4 - round(s / 6.4)) < 1e-9 for s in samples)


class TestWire:
    def test_serialization_occupies_wire(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G)
        end1 = wire.transmit("f1", 64)
        end2 = wire.transmit("f2", 64)
        assert end1 == 84 * 800
        assert end2 == 2 * 84 * 800  # second frame waits for the first

    def test_delivery_with_latency(self):
        loop = EventLoop()
        cable = Cable(Medium("test", 1.0, 100.0), 0.0)
        wire = Wire(loop, units.SPEED_10G, cable)
        got = []
        wire.connect(lambda frame, t: got.append((frame, t)))
        wire.transmit("x", 64)
        loop.run()
        assert got == [("x", 84 * 800 + 100_000)]

    def test_in_order_delivery(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G, Cable(COPPER_CAT5E, 2.0), seed=3)
        arrivals = []
        wire.connect(lambda f, t: arrivals.append(t))
        for i in range(200):
            wire.transmit(i, 64)
        loop.run()
        assert arrivals == sorted(arrivals)
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_counters(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G)
        wire.transmit("a", 64)
        wire.transmit("b", 128)
        assert wire.frames_sent == 2
        assert wire.bytes_sent == 192

    def test_explicit_start_time(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G)
        end = wire.transmit("a", 64, start_ps=1000)
        assert end == 1000 + 84 * 800

    def test_ideal_cable_zero_latency(self):
        assert IDEAL_CABLE.latency_ns() == 0.0

    def test_utilization_full_when_back_to_back(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G)
        for _ in range(10):
            wire.transmit("f", 64)
        assert wire.utilization() == pytest.approx(1.0)

    def test_utilization_half_when_half_idle(self):
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G)
        wire.transmit("a", 64, start_ps=0)
        wire.transmit("b", 64, start_ps=3 * 84 * 800)  # two idle frame slots
        assert wire.utilization() == pytest.approx(0.5)

    def test_utilization_idle_wire(self):
        assert Wire(EventLoop(), units.SPEED_10G).utilization() == 0.0

    def test_line_rate_throughput(self):
        """Back-to-back 64 B frames achieve exactly 14.88 Mpps."""
        loop = EventLoop()
        wire = Wire(loop, units.SPEED_10G)
        n = 1000
        for i in range(n):
            wire.transmit(i, 64)
        total_ns = wire.busy_until_ps / 1000
        pps = n / (total_ns / 1e9)
        assert pps == pytest.approx(units.LINE_RATE_10G_64B_PPS, rel=1e-3)
