"""Tests for the sleep-paced software rate control (Section 7.1 model)."""

import pytest

from repro import CbrPattern, MoonGenEnv, PoissonPattern, units
from repro.core.measure import InterArrivalMeasurement
from repro.core.softpace import SleepPacedLoadTask
from repro.errors import ConfigurationError
from repro.nicsim.nic import CHIP_82580, CHIP_X540


def run_paced(pattern, n_packets=200, seed=4, **kwargs):
    env = MoonGenEnv(seed=seed)
    tx = env.config_device(0, tx_queues=1, chip=CHIP_X540,
                           speed_bps=units.SPEED_1G)
    rx = env.config_device(1, rx_queues=1, chip=CHIP_82580)
    env.connect(tx, rx)
    measurement = InterArrivalMeasurement(env, rx)
    env.launch(measurement.task, n_packets)
    pacer = SleepPacedLoadTask(env, tx.get_tx_queue(0), pattern,
                               seed=seed, **kwargs)
    env.launch(pacer.task, n_packets)
    env.wait_for_slaves(
        duration_ns=n_packets * pattern.mean_gap_ns() * 3 + 5e6)
    return pacer, measurement


class TestSleepPacing:
    def test_rejects_bad_timer(self):
        env = MoonGenEnv()
        tx = env.config_device(0, tx_queues=1)
        with pytest.raises(ConfigurationError):
            SleepPacedLoadTask(env, tx.get_tx_queue(0), CbrPattern(1e6),
                               timer_resolution_ns=0)

    def test_sends_all_packets(self):
        pacer, measurement = run_paced(CbrPattern(500e3), n_packets=100)
        assert pacer.sent == 100
        assert measurement.packets_seen == 100

    def test_rate_accurate_but_imprecise(self):
        """The defining signature of software pacing (Section 7.1)."""
        pacer, measurement = run_paced(CbrPattern(500e3), n_packets=300)
        hist = measurement.histogram
        assert hist.avg() == pytest.approx(2000.0, rel=0.02)  # accurate
        within = hist.fraction_within(2000.0, 64.0 + 1e-6)
        assert within < 0.8  # imprecise: far from the hardware's ~100 %

    def test_never_wakes_early(self):
        """Sleeps only overshoot: the gap distribution skews positive."""
        pacer, measurement = run_paced(
            CbrPattern(500e3), n_packets=300,
            dma_base_ns=0.0, dma_jitter_ns=0.0,
        )
        hist = measurement.histogram
        # Without DMA jitter, early gaps can only come from catching up
        # after a late one; the median is at or above the target.
        assert hist.median() >= 2000.0 - 64.0

    def test_poisson_pattern_supported(self):
        pacer, measurement = run_paced(PoissonPattern(500e3, seed=8),
                                       n_packets=300)
        hist = measurement.histogram
        assert hist.avg() == pytest.approx(2000.0, rel=0.1)
        # Exponential-ish spread (far wider than the timer jitter).
        assert hist.stddev() > 1000.0

    def test_coarse_timer_worse(self):
        _, fine = run_paced(CbrPattern(500e3), n_packets=250,
                            timer_resolution_ns=100.0)
        _, coarse = run_paced(CbrPattern(500e3), n_packets=250,
                              timer_resolution_ns=5000.0)
        assert coarse.histogram.stddev() > fine.histogram.stddev()
