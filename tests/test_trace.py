"""Tests for the structured tracing subsystem (``repro.trace``)."""

import io
import json

import pytest

from repro import MoonGenEnv, Tracer
from repro.errors import ConfigurationError
from repro.nicsim.eventloop import EventLoop
from repro.nicsim.link import Wire
from repro.nicsim.nic import CHIP_X540, NicPort, SimFrame
from repro.trace import (
    CATEGORIES,
    JsonlSink,
    RingSink,
    TeeSink,
    TraceRecord,
    read_jsonl,
)


def frame(size=60):
    return SimFrame(b"\x00" * size)


class TestTracerCore:
    def test_disabled_by_default(self):
        env = MoonGenEnv(seed=1)
        assert env.tracer is None
        assert env.loop.tracer is None

    def test_env_trace_true_enables_all_categories(self):
        env = MoonGenEnv(seed=1, trace=True)
        assert env.tracer is not None
        assert env.loop.tracer is env.tracer
        assert env.tracer.categories == frozenset(CATEGORIES)

    def test_env_trace_category_subset(self):
        env = MoonGenEnv(seed=1, trace={"wire", "drop"})
        assert env.tracer.categories == frozenset({"wire", "drop"})

    def test_env_trace_prebuilt_tracer(self):
        tracer = Tracer(categories={"wire"})
        env = MoonGenEnv(seed=1, trace=tracer)
        assert env.tracer is tracer
        assert env.loop.tracer is tracer

    def test_unknown_category_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer(categories={"wire", "nonsense"})

    def test_emit_stamps_loop_time_and_seq(self):
        loop = EventLoop()
        tracer = Tracer().bind(loop)
        loop.schedule(123, lambda: tracer.emit("wire", "custom", x=1))
        loop.run()
        records = tracer.records()
        custom = [r for r in records if r.kind == "custom"]
        assert custom[0].t_ps == 123
        assert custom[0].fields == {"x": 1}
        seqs = [r.seq for r in records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_category_filtering(self):
        loop = EventLoop()
        tracer = Tracer(categories={"drop"}).bind(loop)
        tracer.emit("wire", "wire_tx", frame=0)
        tracer.emit("drop", "drop_fcs", frame=0)
        assert [r.kind for r in tracer.records()] == ["drop_fcs"]

    def test_frame_ids_renumbered_per_tracer(self):
        # Global SimFrame sequence numbers differ between runs in one
        # process; tracer-local ids always start at 0.
        for _ in range(2):
            tracer = Tracer()
            a, b = frame(), frame()
            assert tracer.frame_id(a) == 0
            assert tracer.frame_id(b) == 1
            assert tracer.frame_id(a) == 0  # stable on re-sight

    def test_json_roundtrip(self):
        rec = TraceRecord(10, 3, "wire_tx", {"frame": 0, "size": 64})
        parsed = read_jsonl(rec.to_json() + "\n")
        assert parsed == [rec]

    def test_records_requires_ring_sink(self):
        tracer = Tracer(sink=JsonlSink(io.StringIO()))
        with pytest.raises(ConfigurationError):
            tracer.records()


class TestSinks:
    def test_ring_sink_evicts_oldest(self):
        sink = RingSink(capacity=3)
        for i in range(5):
            sink.record(TraceRecord(i, i, "k", {}))
        assert [r.t_ps for r in sink.records] == [2, 3, 4]
        assert sink.dropped == 2

    def test_jsonl_sink_streams_lines(self):
        out = io.StringIO()
        sink = JsonlSink(out)
        sink.record(TraceRecord(1, 0, "k", {"a": 1}))
        sink.record(TraceRecord(2, 1, "k", {"a": 2}))
        lines = out.getvalue().splitlines()
        assert len(lines) == 2 and sink.lines == 2
        assert json.loads(lines[0]) == {"t": 1, "seq": 0, "kind": "k", "a": 1}

    def test_tee_sink_duplicates(self):
        ring, out = RingSink(), io.StringIO()
        tee = TeeSink(ring, JsonlSink(out))
        tee.record(TraceRecord(5, 0, "k", {}))
        assert len(ring) == 1
        assert out.getvalue().count("\n") == 1


class TestInstrumentation:
    def run_line_rate(self, trace):
        env = MoonGenEnv(seed=3, trace=trace)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)

        def slave(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60))
            bufs = mem.buf_array()
            while env.running():
                bufs.alloc(60)
                yield queue.send(bufs)

        env.launch(slave, env, tx.get_tx_queue(0))
        env.wait_for_slaves(duration_ns=50_000)
        return env, tx

    def test_tx_path_records_all_kinds(self):
        env, tx = self.run_line_rate(trace=True)
        counts = env.tracer.counts()
        assert counts["desc_fetch"] > 0
        assert counts["wire_tx"] > 0
        assert counts["cpu_charge"] > 0
        assert counts["event_fired"] > 0
        assert counts["proc_advance"] > 0
        # Every serialized frame was first fetched from a descriptor ring.
        assert counts["wire_tx"] == counts["desc_fetch"]

    def test_untraced_run_equivalent(self):
        traced_env, traced_tx = self.run_line_rate(trace=True)
        plain_env, plain_tx = self.run_line_rate(trace=False)
        assert traced_tx.tx_packets == plain_tx.tx_packets

    def test_fcs_drop_recorded(self):
        loop = EventLoop()
        tracer = Tracer().bind(loop)
        port = NicPort(loop, chip=CHIP_X540)
        bad = SimFrame(b"\x00" * 60, fcs_ok=False)
        port.receive(bad, arrival_ps=1000)
        kinds = [r.kind for r in tracer.records()]
        assert kinds == ["drop_fcs"]
        assert port.rx_crc_errors == 1

    def test_rx_ring_overflow_recorded(self):
        loop = EventLoop()
        tracer = Tracer(categories={"drop"}).bind(loop)
        port = NicPort(loop, chip=CHIP_X540)
        ring_size = port.rx_queues[0].ring_size
        for _ in range(ring_size + 3):
            port.receive(frame(), arrival_ps=0)
        kinds = [r.kind for r in tracer.records()]
        assert kinds.count("drop_rx_ring") == 3
        assert port.rx_missed == 3

    def test_wire_corruption_recorded(self):
        loop = EventLoop()
        tracer = Tracer(categories={"drop", "wire"}).bind(loop)
        wire = Wire(loop, 10_000_000_000, seed=4, corrupt_rate=1.0)
        wire.connect(lambda f, t: None)
        wire.transmit(frame(), 64)
        loop.run()
        kinds = [r.kind for r in tracer.records()]
        assert "wire_corrupt" in kinds and "wire_tx" in kinds

    def test_timestamp_latch_recorded(self):
        from repro import Timestamper

        env = MoonGenEnv(seed=5, trace={"tstamp"})
        a = env.config_device(0, tx_queues=1, rx_queues=1)
        b = env.config_device(1, tx_queues=1, rx_queues=1)
        env.connect(a, b)
        ts = Timestamper(env, a.get_tx_queue(0), b, seed=5)
        env.launch(ts.probe_task, 3, 10_000.0)
        env.wait_for_slaves(duration_ns=100_000.0)
        counts = env.tracer.counts()
        assert counts.get("tx_tstamp_latch", 0) >= 3
        assert counts.get("rx_tstamp_latch", 0) >= 3

    def test_dut_interrupt_and_drop_recorded(self):
        from repro.dut import OvsForwarder

        loop = EventLoop()
        tracer = Tracer(categories={"irq", "drop"}).bind(loop)
        dut = OvsForwarder(loop)
        dut.ingress(SimFrame(b"\x00" * 60, fcs_ok=False), arrival_ps=0)
        for i in range(4):
            dut.ingress(frame(), arrival_ps=i * 100)
        loop.run()
        counts = tracer.counts()
        assert counts.get("dut_drop_fcs") == 1
        assert counts.get("dut_irq", 0) >= 1
        assert dut.rx_crc_errors == 1

    def test_stats_monitor_sample_recorded(self):
        from repro.core.monitor import DeviceStatsMonitor

        env = MoonGenEnv(seed=6, trace={"stats"})
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        env.connect(tx, rx)
        monitor = DeviceStatsMonitor(env, tx, interval_ns=1_000_000,
                                     stream=io.StringIO())
        env.launch(monitor.task)
        env.wait_for_slaves(duration_ns=3_000_000)
        kinds = [r.kind for r in env.tracer.records()]
        assert kinds.count("stats_sample") == monitor.samples + 1  # + finalize

    def test_trace_is_deterministic(self):
        def jsonl():
            env, _ = self.run_line_rate(trace=True)
            return env.tracer.to_jsonl()

        assert jsonl() == jsonl()

    def test_jsonl_lines_are_valid_json(self):
        env, _ = self.run_line_rate(trace=True)
        text = env.tracer.to_jsonl()
        for line in text.splitlines():
            obj = json.loads(line)
            assert {"t", "seq", "kind"} <= set(obj)
