"""Tests for the testbed builders, sequence tracking, and software checksums."""

import pytest

from repro import MoonGenEnv, units
from repro.core.seqcheck import (
    SequenceReport,
    SequenceStamper,
    SequenceTracker,
)
from repro.errors import ConfigurationError
from repro.testbed import dut_topology, loadgen_pair, port_fleet


class TestTestbedBuilders:
    def test_loadgen_pair_is_connected(self):
        pair = loadgen_pair(seed=1)

        def slave(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(4)
            bufs.alloc(60)
            yield queue.send(bufs)

        pair.env.launch(slave, pair.env, pair.tx_dev.get_tx_queue(0))
        pair.env.wait_for_slaves()
        assert pair.rx_dev.rx_packets == 4

    def test_dut_topology_forwards(self):
        topo = dut_topology(seed=2)

        def slave(env, queue):
            mem = env.create_mempool(fill=lambda b: b.eth_packet.fill(
                eth_type=0x0800))
            bufs = mem.buf_array(8)
            bufs.alloc(60)
            yield queue.send(bufs)

        topo.env.launch(slave, topo.env, topo.tx_dev.get_tx_queue(0))
        topo.env.wait_for_slaves(duration_ns=1_000_000)
        assert topo.dut.forwarded == 8
        assert topo.rx_dev.rx_packets == 8

    def test_port_fleet_aggregates(self):
        fleet = port_fleet(3, seed=3)

        def slave_factory(env, tx_dev, rx_dev):
            mem = env.create_mempool()
            bufs = mem.buf_array(5)
            bufs.alloc(60)
            yield tx_dev.get_tx_queue(0).send(bufs)

        fleet.launch_on_each(slave_factory)
        fleet.env.wait_for_slaves()
        assert fleet.total_tx_packets == 15
        assert all(dev.rx_packets == 5 for dev in fleet.rx_devs)

    def test_port_fleet_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            port_fleet(0)


class TestSequenceStamper:
    def make_batch(self, n=4, size=60):
        env = MoonGenEnv()
        pool = env.create_mempool(fill=lambda b: b.udp_packet.fill(
            pkt_length=size))
        bufs = pool.buf_array(n)
        bufs.alloc(size)
        return bufs

    def test_stamps_consecutively(self):
        stamper = SequenceStamper()
        bufs = self.make_batch(4)
        stamper.stamp(bufs)
        seqs = [int.from_bytes(b.pkt.data[42:46], "big") for b in bufs]
        assert seqs == [0, 1, 2, 3]
        assert ("counter", 1) in bufs.drain_ledger()

    def test_continues_across_batches(self):
        stamper = SequenceStamper()
        a = self.make_batch(3)
        stamper.stamp(a)
        b = self.make_batch(3)
        stamper.stamp(b)
        assert int.from_bytes(b[0].pkt.data[42:46], "big") == 3

    def test_needs_room(self):
        stamper = SequenceStamper(offset=100)
        bufs = self.make_batch(1, size=60)
        with pytest.raises(ConfigurationError):
            stamper.stamp(bufs)


class _FakeBuf:
    def __init__(self, seq):
        class P:
            pass
        self.pkt = P()
        self.pkt.data = bytearray(64)
        self.pkt.data[42:46] = seq.to_bytes(4, "big")
        self.pkt.size = 64


class TestSequenceTracker:
    def observe(self, tracker, *seqs):
        for s in seqs:
            tracker.observe(_FakeBuf(s))

    def test_in_order_no_loss(self):
        t = SequenceTracker()
        self.observe(t, 0, 1, 2, 3)
        assert t.report == SequenceReport(received=4)

    def test_gap_counts_losses(self):
        t = SequenceTracker()
        self.observe(t, 0, 1, 5)
        assert t.report.received == 3
        assert t.report.lost == 3
        assert t.report.loss_fraction == pytest.approx(0.5)

    def test_straggler_reclassified_as_reordered(self):
        t = SequenceTracker()
        self.observe(t, 0, 2, 1)
        assert t.report.lost == 0
        assert t.report.reordered == 1
        assert t.report.received == 3

    def test_duplicates(self):
        t = SequenceTracker()
        self.observe(t, 0, 1, 1)
        assert t.report.duplicates == 1
        assert t.report.received == 2

    def test_end_to_end_with_lossy_wire(self):
        """Failure injection: corrupted frames show up as sequence losses."""
        from repro.nicsim.link import Wire
        env = MoonGenEnv(seed=4)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        wire = Wire(env.loop, tx.port.speed_bps, corrupt_rate=0.2, seed=7)
        wire.connect(rx.port.receive)
        tx.port.attach_wire(wire)
        stamper = SequenceStamper()
        tracker = SequenceTracker()

        def sender(env, queue):
            mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                pkt_length=60))
            bufs = mem.buf_array(25)
            for _ in range(8):
                bufs.alloc(60)
                stamper.stamp(bufs)
                yield queue.send(bufs)

        def receiver(env, queue):
            mem = env.create_mempool()
            bufs = mem.buf_array(64)
            while env.running():
                n = yield queue.recv(bufs, timeout_ns=500_000)
                if n == 0 and stamper.next_seq == 200:
                    return
                tracker.observe_batch(bufs)
                bufs.free_all()

        env.launch(sender, env, tx.get_tx_queue(0))
        env.launch(receiver, env, rx.get_rx_queue(0))
        env.wait_for_slaves(duration_ns=10_000_000)
        assert tracker.report.lost == rx.rx_crc_errors
        assert tracker.report.received == 200 - rx.rx_crc_errors
        assert tracker.report.loss_fraction == pytest.approx(
            rx.rx_crc_errors / 200)


class TestSequenceTrackerProperties:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=200),
           st.integers(min_value=0, max_value=1000))
    def test_in_order_stream_never_loses(self, n, seed):
        import random
        tracker = SequenceTracker()
        for seq in range(n):
            tracker.observe(_FakeBuf(seq))
        assert tracker.report.lost == 0
        assert tracker.report.received == n

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=0, max_value=1000))
    def test_local_shuffle_only_reorders(self, n, seed):
        """A complete stream, locally shuffled, shows reordering, never a
        net loss."""
        import random
        rng = random.Random(seed)
        seqs = list(range(n))
        # Swap adjacent pairs at random: bounded reordering.
        for i in range(0, n - 1, 2):
            if rng.random() < 0.5:
                seqs[i], seqs[i + 1] = seqs[i + 1], seqs[i]
        tracker = SequenceTracker()
        for seq in seqs:
            tracker.observe(_FakeBuf(seq))
        assert tracker.report.lost == 0
        assert tracker.report.received == n
        assert tracker.report.duplicates == 0

    @settings(max_examples=40, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=99), max_size=60),
           st.integers(min_value=0, max_value=100))
    def test_arbitrary_drops_accounted_exactly(self, dropped, _seed):
        """Delivering 0..99 minus a drop set: lost == len(drops) except
        drops at the very end, which no gap can reveal."""
        tracker = SequenceTracker()
        for seq in range(100):
            if seq not in dropped:
                tracker.observe(_FakeBuf(seq))
        tail = 0
        while (99 - tail) in dropped:
            tail += 1
        assert tracker.report.lost == len(dropped) - tail
        assert tracker.report.received == 100 - len(dropped)


class TestSoftwareChecksums:
    def test_checksums_written_into_buffers(self):
        env = MoonGenEnv()
        pool = env.create_mempool(fill=lambda b: b.udp_packet.fill(
            pkt_length=60, ip_src="10.0.0.1", ip_dst="10.0.0.2"))
        bufs = pool.buf_array(2)
        bufs.alloc(60)
        bufs.calculate_udp_checksums_software()
        for buf in bufs:
            assert buf.udp_packet.ip.verify_checksum()
            assert buf.udp_packet.verify_udp_checksum()
            assert buf.udp_packet.udp.checksum != 0
        entries = bufs.drain_ledger()
        assert entries and entries[0][0] == "sw_checksum"

    def test_software_slower_than_offload(self):
        """Section 5.6.1: offloading beats computing in software."""
        def run(software: bool):
            env = MoonGenEnv(seed=9, core_freq_hz=1.2e9)
            tx = env.config_device(0, tx_queues=1)
            rx = env.config_device(1, rx_queues=1)
            env.connect(tx, rx)

            def slave(env, queue):
                mem = env.create_mempool(fill=lambda b: b.udp_packet.fill(
                    pkt_length=60))
                bufs = mem.buf_array()
                while env.running():
                    bufs.alloc(60)
                    bufs.charge_random_fields(8)  # keep it CPU-bound
                    if software:
                        bufs.calculate_udp_checksums_software()
                    else:
                        bufs.offload_udp_checksums()
                    yield queue.send(bufs)

            env.launch(slave, env, tx.get_tx_queue(0))
            env.wait_for_slaves(duration_ns=300_000)
            return tx.tx_packets / (env.now_ns / 1e9)

        assert run(software=False) > run(software=True) * 1.03
