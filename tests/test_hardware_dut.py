"""Tests for the hardware-appliance DuT and the switch workaround."""

import pytest

from repro import CbrPattern, GapFiller, MoonGenEnv
from repro.dut import HardwareAppliance, StoreAndForwardSwitch
from repro.nicsim.nic import SimFrame


class TestHardwareAppliance:
    def test_forwards_valid_frames(self):
        env = MoonGenEnv()
        hw = HardwareAppliance(env.loop)
        for i in range(5):
            env.loop.schedule_at(i * 1_000_000, lambda: hw.ingress(
                SimFrame(b"\x00" * 60), env.loop.now_ps))
        env.loop.run()
        assert hw.forwarded == 5

    def test_invalid_frames_consume_pipeline(self):
        """Unlike the NICs' early drop, the appliance pays for fillers."""
        env = MoonGenEnv()
        hw = HardwareAppliance(env.loop, pipeline_ns=400.0)
        # One valid frame behind 10 invalid ones, all arriving at once.
        for _ in range(10):
            hw.ingress(SimFrame(b"\x00" * 60, fcs_ok=False), 0)
        hw.ingress(SimFrame(b"\x00" * 60), 0)
        env.loop.run()
        assert hw.discarded_invalid == 10
        assert hw.forwarded == 1
        # The valid frame waited behind all ten fillers.
        assert hw.latency_samples_ns[0] == pytest.approx(11 * 400.0)

    def test_queue_overflow(self):
        env = MoonGenEnv()
        hw = HardwareAppliance(env.loop, queue_frames=4)
        for _ in range(10):
            hw.ingress(SimFrame(b"\x00" * 60), 0)
        env.loop.run()
        assert hw.dropped > 0
        assert hw.forwarded + hw.dropped == 10


class TestSwitchWorkaround:
    def run_crc_load(self, use_switch: bool, n_packets: int = 150):
        """CRC-gap CBR stream into the appliance, optionally via a switch."""
        env = MoonGenEnv(seed=4)
        tx = env.config_device(0, tx_queues=1)
        rx = env.config_device(1, rx_queues=1)
        hw = HardwareAppliance(env.loop, pipeline_ns=400.0)
        if use_switch:
            switch = StoreAndForwardSwitch(env.loop)
            env.connect_to_sink(tx, switch.ingress)
            switch.connect_output(self._wire(env, tx, hw))
        else:
            env.connect_to_sink(tx, hw.ingress)
        hw.connect_output(env.wire_to_device(rx))
        filler = GapFiller()

        def craft(buf, index):
            buf.eth_packet.fill(eth_type=0x0800)

        env.launch(filler.load_task, env, tx.get_tx_queue(0),
                   CbrPattern(1.5e6), n_packets, craft)
        env.wait_for_slaves(duration_ns=10_000_000)
        return hw

    @staticmethod
    def _wire(env, tx, hw):
        from repro.nicsim.link import Wire
        wire = Wire(env.loop, tx.port.speed_bps)
        wire.connect(hw.ingress)
        return wire

    def test_fillers_inflate_appliance_latency(self):
        """Without the switch, invalid fillers load the hardware DuT —
        the Section 8.4 caveat."""
        direct = self.run_crc_load(use_switch=False)
        assert direct.discarded_invalid > 0
        assert direct.forwarded > 0

    def test_switch_strips_fillers(self):
        """With the switch in front, the appliance never sees fillers and
        its latency reflects only real traffic."""
        via_switch = self.run_crc_load(use_switch=True)
        direct = self.run_crc_load(use_switch=False)
        assert via_switch.discarded_invalid == 0
        assert via_switch.forwarded == direct.forwarded
        # Median appliance latency improves without the filler load.
        import statistics
        lat_switch = statistics.median(via_switch.latency_samples_ns)
        lat_direct = statistics.median(direct.latency_samples_ns)
        assert lat_switch <= lat_direct
