"""Tests for the event-driven inter-arrival measurement (82580 path)."""

import pytest

from repro import CbrPattern, GapFiller, MoonGenEnv, units
from repro.core.measure import InterArrivalMeasurement
from repro.errors import TimestampingError
from repro.nicsim.nic import CHIP_82580, CHIP_X540


class TestRequirements:
    def test_needs_per_packet_timestamping(self):
        env = MoonGenEnv()
        dev = env.config_device(0, rx_queues=1, chip=CHIP_X540)
        with pytest.raises(TimestampingError):
            InterArrivalMeasurement(env, dev)

    def test_82580_accepted(self):
        env = MoonGenEnv()
        dev = env.config_device(0, rx_queues=1, chip=CHIP_82580)
        InterArrivalMeasurement(env, dev)


class TestMeasurement:
    def build(self, pps, n_packets):
        env = MoonGenEnv(seed=4)
        # GbE sender to a GbE 82580 measurement NIC (the paper's setup).
        tx = env.config_device(0, tx_queues=1, chip=CHIP_X540,
                               speed_bps=units.SPEED_1G)
        rx = env.config_device(1, rx_queues=1, chip=CHIP_82580)
        env.connect(tx, rx)
        measurement = InterArrivalMeasurement(env, rx)
        env.launch(measurement.task, n_packets)

        filler = GapFiller(frame_size=64, speed_bps=units.SPEED_1G)

        def craft(buf, index):
            buf.eth_packet.fill(eth_type=0x0800)

        env.launch(filler.load_task, env, tx.get_tx_queue(0),
                   CbrPattern(pps), n_packets, craft)
        env.wait_for_slaves(duration_ns=n_packets * (1e9 / pps) * 2 + 5e6)
        return measurement

    def test_cbr_measured_at_64ns_grid(self):
        measurement = self.build(pps=500e3, n_packets=300)
        hist = measurement.histogram
        assert len(hist) >= 250
        # The 82580 quantizes to 64 ns: all gaps are near 2000 ns on grid.
        assert hist.fraction_within(2000.0, 64.0 + 1e-6) > 0.95
        for sample in hist.samples:
            assert abs(sample % 64.0) < 1e-6 or abs(sample % 64.0 - 64.0) < 1e-6

    def test_mean_rate_recovered(self):
        measurement = self.build(pps=250e3, n_packets=200)
        mean_gap = measurement.histogram.avg()
        assert mean_gap == pytest.approx(4000.0, rel=0.02)

    def test_packet_count(self):
        measurement = self.build(pps=500e3, n_packets=100)
        assert measurement.packets_seen == 100
        assert len(measurement.histogram) == 99
