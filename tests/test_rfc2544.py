"""Tests for the RFC 2544 throughput harness."""

import pytest

from repro import units
from repro.analysis.rfc2544 import (
    STANDARD_FRAME_SIZES,
    ThroughputResult,
    Trial,
    default_loss_probe,
    frame_size_sweep,
    throughput_sweep,
    throughput_test,
)
from repro.errors import ConfigurationError


def step_probe(threshold_pps):
    """Loss probe with a sharp capacity threshold."""

    def probe(pps):
        return 0.0 if pps <= threshold_pps else 0.1

    return probe


class TestBinarySearch:
    def test_finds_threshold(self):
        result = throughput_test(step_probe(5e6), line_rate_pps=14.88e6)
        assert result.throughput_pps == pytest.approx(5e6, rel=0.01)

    def test_line_rate_device_short_circuits(self):
        result = throughput_test(step_probe(1e9), line_rate_pps=14.88e6)
        assert result.throughput_pps == 14.88e6
        assert len(result.trials) == 1

    def test_trials_recorded(self):
        result = throughput_test(step_probe(5e6), line_rate_pps=14.88e6)
        assert all(isinstance(t, Trial) for t in result.trials)
        assert result.trials[0].offered_pps == 14.88e6
        assert not result.trials[0].passed

    def test_resolution_bounds_trial_count(self):
        coarse = throughput_test(step_probe(5e6), 14.88e6, resolution=0.1)
        fine = throughput_test(step_probe(5e6), 14.88e6, resolution=0.001)
        assert len(fine.trials) > len(coarse.trials)
        assert fine.throughput_pps == pytest.approx(5e6, rel=0.002)

    def test_rejects_bad_resolution(self):
        with pytest.raises(ConfigurationError):
            throughput_test(step_probe(1), 10, resolution=0)

    def test_result_conversions(self):
        result = ThroughputResult(64, 14.88e6)
        assert result.throughput_mpps == pytest.approx(14.88)
        assert result.throughput_gbps() == pytest.approx(7.62, rel=0.01)


class TestAgainstSimulatedDut:
    def test_finds_ovs_capacity(self):
        """The OvS DuT overloads at ~1.9 Mpps; RFC 2544 should find it."""
        probe = default_loss_probe(duration_s=0.04, seed=1)
        result = throughput_test(probe, units.LINE_RATE_10G_64B_PPS,
                                 resolution=0.02)
        assert result.throughput_pps == pytest.approx(1.95e6, rel=0.08)

    def test_larger_ring_raises_measured_throughput_slightly(self):
        """A deeper rx ring absorbs longer transients before losing."""
        small = throughput_test(
            default_loss_probe(duration_s=0.01, ring_size=256),
            units.LINE_RATE_10G_64B_PPS, resolution=0.02,
        )
        large = throughput_test(
            default_loss_probe(duration_s=0.01, ring_size=8192),
            units.LINE_RATE_10G_64B_PPS, resolution=0.02,
        )
        assert large.throughput_pps >= small.throughput_pps

    def test_frame_size_sweep(self):
        results = frame_size_sweep(
            line_rate_for=lambda size: units.line_rate_pps(size, units.SPEED_10G),
            probe_factory=lambda size: default_loss_probe(
                frame_size=size, duration_s=0.005),
            frame_sizes=(64, 512, 1518),
            resolution=0.02,
        )
        assert [r.frame_size for r in results] == [64, 512, 1518]
        # The DuT is pps-bound (~1.9 Mpps): larger frames reach line rate
        # because line rate in pps drops below the capacity.
        assert results[-1].throughput_pps == pytest.approx(
            units.line_rate_pps(1518, units.SPEED_10G), rel=0.02
        )

    def test_standard_sizes_constant(self):
        assert STANDARD_FRAME_SIZES == (64, 128, 256, 512, 1024, 1280, 1518)

    def test_throughput_sweep_serial(self):
        results = throughput_sweep(
            frame_sizes=(64, 1518), resolution=0.05, seed=7,
            duration_s=0.01, jobs=1,
        )
        assert [r.frame_size for r in results] == [64, 1518]
        assert results[1].throughput_pps == pytest.approx(
            units.line_rate_pps(1518, units.SPEED_10G), rel=0.02
        )

    def test_throughput_sweep_parallel_matches_serial(self):
        """The per-size searches fan through repro.parallel: worker count
        must not change a single trial."""
        kwargs = dict(frame_sizes=(64, 512), resolution=0.05, seed=7,
                      duration_s=0.01)
        serial = throughput_sweep(jobs=1, **kwargs)
        parallel = throughput_sweep(jobs=2, **kwargs)
        for a, b in zip(serial, parallel):
            assert a.frame_size == b.frame_size
            assert a.throughput_pps == b.throughput_pps
            assert [(t.offered_pps, t.passed) for t in a.trials] == \
                   [(t.offered_pps, t.passed) for t in b.trials]
